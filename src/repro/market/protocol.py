"""The negotiation protocol as explicit messages, with optional latency.

The default :class:`~repro.market.broker.Broker` negotiates instantly —
the paper notes the protocol "may consist of just this one pair of
exchanges".  Real grids have wire latency, and latency matters: a quote
reflects the site's candidate schedule *at quote time*, so by the time
the award lands the schedule may have moved (quotes go stale and
promised completions get missed).

:class:`LatentNegotiator` runs the same two-phase exchange as simulation
*processes* on the DES kernel: request → (latency) → quotes →
(selection) → (latency) → award.  Message dataclasses make the exchange
inspectable; tests assert both the happy path and the stale-quote
effect.

With a :class:`~repro.faults.MessageFaults` model attached
(``repro.faults`` reliability subsystem), any one-way message — the
request, each site's quote, the award — can be lost in flight.  The
client recovers with timeouts and bounded exponential-backoff
retransmission; a negotiation whose retry budget runs dry fails (no
contract) — unless a :class:`~repro.resilience.ResilienceManager` is
attached, in which case the failure is reported for failover re-bidding
within the manager's budget.

The stale-quote exposure is bounded by quote TTLs: a site built with
``quote_ttl`` stamps ``expires_at`` on its quotes and refuses awards
past it, and the negotiator *revalidates* — re-solicits the winner's
current quote — instead of landing an award against a schedule that has
since changed.  Sites without a TTL (the default) keep the original
open-ended-quote semantics, where each retry deepens the stale-quote
effect the latency model makes observable.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from repro.errors import MarketError
from repro.market.broker import SelectionStrategy, best_yield
from repro.market.sites import MarketSite
from repro.sim.kernel import Simulator
from repro.sim.process import Process, Timeout
from repro.tasks.bid import ServerBid, TaskBid
from repro.tasks.contract import Contract

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.faults.messages import MessageFaults
    from repro.obs.instrument import Observability
    from repro.resilience.manager import ResilienceManager

_negotiation_ids = itertools.count()


@dataclass(frozen=True)
class BidRequest:
    """Client → site: the sealed bid."""

    negotiation_id: int
    bid: TaskBid
    sent_at: float


@dataclass(frozen=True)
class BidResponse:
    """Site → client: a quote, or a decline (quote=None)."""

    negotiation_id: int
    site_id: str
    quote: Optional[ServerBid]
    sent_at: float


@dataclass(frozen=True)
class Award:
    """Client → winning site: accept the quoted terms."""

    negotiation_id: int
    site_id: str
    quote: ServerBid
    sent_at: float


@dataclass
class NegotiationRecord:
    """Full transcript of one latent negotiation."""

    negotiation_id: int
    request: Optional[BidRequest] = None
    responses: list[BidResponse] = field(default_factory=list)
    award: Optional[Award] = None
    contract: Optional[Contract] = None
    lost_messages: int = 0  # messages dropped in flight (any hop)
    retries: int = 0  # retransmissions after a timeout
    requotes: int = 0  # expired quotes revalidated before the award
    failure_reason: str = ""  # why no contract formed ("" on success)

    @property
    def accepted(self) -> bool:
        return self.contract is not None

    @property
    def round_trips(self) -> int:
        return (1 if self.request else 0) + (1 if self.award else 0)


class LatentNegotiator:
    """Two-phase negotiation with symmetric one-way message latency.

    Each ``negotiate`` call spawns a process: the request takes
    ``latency`` to reach the sites, quotes take ``latency`` to return,
    and the award another ``latency`` to land — 3 one-way hops before
    the task enters the winner's schedule.
    """

    def __init__(
        self,
        sim: Simulator,
        sites: Sequence[MarketSite],
        latency: float = 0.0,
        strategy: SelectionStrategy = best_yield,
        faults: "Optional[MessageFaults]" = None,
        obs: "Optional[Observability]" = None,
        resilience: "Optional[ResilienceManager]" = None,
    ) -> None:
        if not sites:
            raise MarketError("negotiator requires at least one site")
        if latency < 0:
            raise MarketError(f"latency must be >= 0, got {latency!r}")
        self.sim = sim
        self.sites = list(sites)
        self.latency = float(latency)
        self.strategy = strategy
        self.faults = faults
        self.obs = obs
        #: optional :class:`~repro.resilience.ResilienceManager`: failed
        #: negotiations (retry budget exhausted) are reported to it so it
        #: can re-bid the task within its failover budget
        self.resilience = resilience
        self.records: list[NegotiationRecord] = []

    def negotiate(self, bid: TaskBid) -> NegotiationRecord:
        """Start one negotiation; returns its (live) transcript record.

        The bid's release time is anchored to *now* when unset, so the
        whole protocol latency counts as delay against the client's
        value function.
        """
        if bid.released_at is None:
            from dataclasses import replace

            bid = replace(bid, released_at=self.sim.now)
        record = NegotiationRecord(negotiation_id=next(_negotiation_ids))
        self.records.append(record)
        if self.obs is not None:
            self.obs.negotiation_started(record.negotiation_id, self.sim.now)
        Process(self.sim, self._run(bid, record), name=f"negotiation-{record.negotiation_id}")
        return record

    def _lost(self, record: NegotiationRecord) -> bool:
        """One in-flight message fate; False always when faults are off."""
        if self.faults is None:
            return False
        lost = self.faults.lost()
        if lost:
            record.lost_messages += 1
            if self.obs is not None:
                self.obs.message_lost()
        return lost

    def _finish(
        self, record: NegotiationRecord, reason: str = ""
    ) -> NegotiationRecord:
        """Close the negotiation's telemetry span (success or failure)."""
        record.failure_reason = "" if record.contract is not None else reason
        if self.obs is not None:
            contract = record.contract
            self.obs.negotiation_finished(
                record.negotiation_id,
                self.sim.now,
                contracted=contract is not None,
                task_id=contract.task_tid if contract is not None else None,
                site_id=contract.site_id if contract is not None else None,
            )
        if record.contract is None and self.resilience is not None:
            # a dried-up retry budget is recoverable: the manager may
            # re-bid the task (bounded by its failover budget)
            self.resilience.note_negotiation_failure(record, self)
        return record

    def _run(self, bid: TaskBid, record: NegotiationRecord):
        record.request = BidRequest(record.negotiation_id, bid, self.sim.now)
        attempt = 0  # one retry budget across the whole negotiation

        # -- phase 1: request out, quotes back (with retransmission) ----
        while True:
            request_lost = self._lost(record)
            if self.latency:
                yield Timeout(self.latency)  # request in flight

            quotes: list[ServerBid] = []
            quote_sites: list[MarketSite] = []
            any_response = False
            if not request_lost:
                for site in self.sites:
                    quote = site.quote(bid)
                    if self._lost(record):
                        continue  # this site's response vanished in flight
                    any_response = True
                    record.responses.append(
                        BidResponse(record.negotiation_id, site.site_id, quote, self.sim.now)
                    )
                    if self.obs is not None:
                        self.obs.negotiation_quoted(
                            record.negotiation_id, site.site_id, quote is None, self.sim.now
                        )
                    if quote is not None:
                        quotes.append(quote)
                        quote_sites.append(site)

            if self.latency:
                yield Timeout(self.latency)  # responses in flight

            if request_lost or not any_response:
                # silence: the client cannot tell a lost request from
                # lost responses — wait out the timeout and retransmit
                if self.faults is None or attempt >= self.faults.max_retries:
                    return self._finish(record, reason="retries-exhausted")
                yield Timeout(self.faults.retry_delay(attempt))
                self.faults.note_retry()
                record.retries += 1
                if self.obs is not None:
                    self.obs.message_retry()
                attempt += 1
                continue
            break

        index = self.strategy(bid, quotes)
        if index is None:
            return self._finish(record, reason="no-quotes")

        # -- phase 2: award (with retransmission) -----------------------
        winner = quotes[index]
        winner_site = quote_sites[index]
        while True:
            award_lost = self._lost(record)
            if self.latency:
                yield Timeout(self.latency)  # award in flight

            if not award_lost:
                if winner.expired(self.sim.now):
                    # the quote's TTL lapsed in flight: the site would
                    # refuse the award, so revalidate against the
                    # winner's *current* schedule instead of landing a
                    # promise it computed for a schedule that has moved
                    record.requotes += 1
                    if self.obs is not None:
                        self.obs.quote_expired()
                    fresh = winner_site.quote(bid)
                    if fresh is not None:
                        record.responses.append(
                            BidResponse(
                                record.negotiation_id,
                                winner_site.site_id,
                                fresh,
                                self.sim.now,
                            )
                        )
                    if fresh is None:
                        return self._finish(record, reason="quote-expired")
                    winner = fresh
                record.award = Award(
                    record.negotiation_id, winner.site_id, winner, self.sim.now
                )
                record.contract = winner_site.award(bid, winner)
                return self._finish(record)

            # the site never saw the award; back off and resend (the
            # quote goes staler with every round trip)
            if attempt >= self.faults.max_retries:
                return self._finish(record, reason="retries-exhausted")
            yield Timeout(self.faults.retry_delay(attempt))
            self.faults.note_retry()
            record.retries += 1
            if self.obs is not None:
                self.obs.message_retry()
            attempt += 1

    # ------------------------------------------------------------------
    @property
    def accepted(self) -> int:
        return sum(1 for r in self.records if r.accepted)

    @property
    def messages_lost(self) -> int:
        return sum(r.lost_messages for r in self.records)

    @property
    def total_retries(self) -> int:
        return sum(r.retries for r in self.records)

    @property
    def total_requotes(self) -> int:
        return sum(r.requotes for r in self.records)

    @property
    def stale_promise_rate(self) -> float:
        """Fraction of settled contracts that missed their promised
        completion — the cost of negotiating over a slow wire."""
        settled = [
            r.contract for r in self.records if r.contract is not None and r.contract.settled
        ]
        if not settled:
            return 0.0
        return sum(1 for c in settled if not c.on_time) / len(settled)
