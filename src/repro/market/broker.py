"""The broker: negotiates one task with every site (Fig. 1).

"A broker could coordinate this negotiation process, as in Mariposa."
The broker collects quotes (sealed-bid, one round), selects the winning
site with a pluggable strategy, and awards the contract.  A Vickrey-
flavoured payment rule is available: the winner is charged the price of
the second-best quote (§2's pricing discussion; Spawn's mechanism).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.errors import MarketError
from repro.market.sites import MarketSite
from repro.tasks.bid import ServerBid, TaskBid
from repro.tasks.contract import Contract

#: Selection strategy: picks the index of the winning quote (or None).
SelectionStrategy = Callable[[TaskBid, Sequence[ServerBid]], Optional[int]]


def earliest_completion(bid: TaskBid, quotes: Sequence[ServerBid]) -> Optional[int]:
    """Pick the quote with the earliest expected completion."""
    if not quotes:
        return None
    return min(range(len(quotes)), key=lambda i: quotes[i].expected_completion)


def _release_of(bid: TaskBid) -> float:
    return bid.released_at if bid.released_at is not None else 0.0


def best_yield(bid: TaskBid, quotes: Sequence[ServerBid]) -> Optional[int]:
    """Pick the quote maximizing the client's value at the promised time.

    The client evaluates its own value function at each site's expected
    completion — the natural criterion when prices equal bid value.
    Ties break toward earlier completion.
    """
    if not quotes:
        return None
    vf = bid.value_function()
    release = _release_of(bid)

    def client_value(q: ServerBid) -> float:
        delay = max(0.0, q.expected_completion - release - bid.runtime)
        return vf.yield_at(delay)

    return max(
        range(len(quotes)),
        key=lambda i: (client_value(quotes[i]), -quotes[i].expected_completion),
    )


def best_surplus(bid: TaskBid, quotes: Sequence[ServerBid]) -> Optional[int]:
    """Pick the quote maximizing (client value − quoted price).

    Under bid-value pricing surplus is ~0 everywhere and this degrades
    to earliest completion; with discounted pricing it shops for margin.
    """
    if not quotes:
        return None
    vf = bid.value_function()
    release = _release_of(bid)

    def surplus(q: ServerBid) -> float:
        delay = max(0.0, q.expected_completion - release - bid.runtime)
        return vf.yield_at(delay) - q.expected_price

    return max(
        range(len(quotes)),
        key=lambda i: (surplus(quotes[i]), -quotes[i].expected_completion),
    )


@dataclass
class NegotiationOutcome:
    """Result of one bid negotiation across all sites."""

    bid: TaskBid
    quotes: list[ServerBid]
    winner: Optional[ServerBid]
    contract: Optional[Contract]

    @property
    def accepted(self) -> bool:
        return self.contract is not None


@dataclass
class Broker:
    """Coordinates Fig. 1's client↔sites negotiation.

    Parameters
    ----------
    sites:
        The candidate task-service sites.
    strategy:
        Quote-selection strategy (default: client value at promised
        completion).
    vickrey:
        When True, the awarded contract's *promised price* is reduced to
        the second-best quote's price (single round, sealed bids).
    """

    sites: list[MarketSite]
    strategy: SelectionStrategy = field(default=best_yield)
    vickrey: bool = False
    negotiations: int = 0
    rejections: int = 0
    #: optional FlightRecorder; when set, bid arrivals and awards are
    #: recorded (sites record their own quotes/settlements)
    flight: Optional[object] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.sites:
            raise MarketError("broker requires at least one site")
        ids = [s.site_id for s in self.sites]
        if len(set(ids)) != len(ids):
            raise MarketError(f"duplicate site ids: {ids}")

    def negotiate(self, bid: TaskBid) -> NegotiationOutcome:
        """Run one sealed-bid round for *bid* and award the winner (if any)."""
        self.negotiations += 1
        if self.flight is not None:
            self.flight.bid(self.sites[0].clock.now, bid)
        outcome = self._negotiate_over(bid, self.sites)
        if not outcome.accepted:
            self.rejections += 1
        return outcome

    def _negotiate_over(
        self, bid: TaskBid, sites: Sequence[MarketSite]
    ) -> NegotiationOutcome:
        """One sealed-bid round restricted to *sites* (no counter updates).

        Subclasses that filter the candidate set — e.g. the resilience
        layer's circuit breakers skipping unhealthy sites — negotiate
        through this helper so selection/award semantics stay identical.
        """
        quotes: list[ServerBid] = []
        quote_sites: list[MarketSite] = []
        for site in sites:
            quote = site.quote(bid)
            if quote is not None:
                quotes.append(quote)
                quote_sites.append(site)

        index = self.strategy(bid, quotes)
        if index is None:
            return NegotiationOutcome(bid=bid, quotes=quotes, winner=None, contract=None)

        winner = quotes[index]
        if self.vickrey and len(quotes) > 1:
            second = max(
                q.expected_price for i, q in enumerate(quotes) if i != index
            )
            winner = ServerBid(
                site_id=winner.site_id,
                bid_id=winner.bid_id,
                expected_completion=winner.expected_completion,
                expected_price=min(winner.expected_price, second),
                expected_slack=winner.expected_slack,
                expires_at=winner.expires_at,
            )
        contract = quote_sites[index].award(bid, winner)
        if self.flight is not None:
            self.flight.award(contract.signed_at, bid, winner, contract)
        return NegotiationOutcome(bid=bid, quotes=quotes, winner=winner, contract=contract)
