"""Price signals: published summaries of recent contracts (§2).

"Given sufficient market volume, it may be sufficient to publish
summaries of recent contracts as a basis for competitive bidding."

A :class:`PriceBoard` is that publication: sites (or the broker) post
each settled contract; readers query recent unit prices (price per unit
of service time) per site or market-wide.  The board never exposes the
sealed bids themselves — only settled outcomes, in keeping with the
paper's sealed-bid protocol.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from repro.errors import MarketError
from repro.tasks.contract import Contract


@dataclass(frozen=True)
class PricePoint:
    """One published settlement."""

    time: float
    site_id: str
    unit_price: float  # settled price per unit of declared runtime
    on_time: bool


class PriceBoard:
    """Rolling window of published contract settlements.

    Parameters
    ----------
    window:
        Number of recent settlements retained (market-wide).
    """

    def __init__(self, window: int = 256) -> None:
        if window < 1:
            raise MarketError(f"window must be >= 1, got {window}")
        self._points: Deque[PricePoint] = deque(maxlen=window)
        self.published = 0

    # ------------------------------------------------------------------
    def publish(self, contract: Contract) -> PricePoint:
        """Post one *settled* contract to the board."""
        if not contract.settled or contract.actual_price is None:
            raise MarketError(
                f"contract {contract.contract_id} is not settled; only settled "
                "contracts are published"
            )
        point = PricePoint(
            time=contract.actual_completion if contract.actual_completion is not None else 0.0,
            site_id=contract.site_id,
            unit_price=contract.actual_price / contract.bid.runtime,
            on_time=contract.on_time,
        )
        return self.publish_point(point)

    def publish_point(self, point: PricePoint) -> PricePoint:
        """Post an already-formed :class:`PricePoint` (recorder feeds)."""
        self._points.append(point)
        self.published += 1
        return point

    # ------------------------------------------------------------------
    def recent(self, site_id: Optional[str] = None) -> list[PricePoint]:
        """Retained points, oldest first, optionally filtered by site."""
        points = list(self._points)
        if site_id is not None:
            points = [p for p in points if p.site_id == site_id]
        return points

    def mean_unit_price(self, site_id: Optional[str] = None) -> Optional[float]:
        points = self.recent(site_id)
        if not points:
            return None
        return sum(p.unit_price for p in points) / len(points)

    def on_time_rate(self, site_id: Optional[str] = None) -> Optional[float]:
        points = self.recent(site_id)
        if not points:
            return None
        return sum(1 for p in points if p.on_time) / len(points)

    def site_summary(self) -> dict[str, dict]:
        """Per-site mean unit price and on-time rate over the window."""
        sites = sorted({p.site_id for p in self._points})
        return {
            s: {
                "mean_unit_price": self.mean_unit_price(s),
                "on_time_rate": self.on_time_rate(s),
                "settlements": len(self.recent(s)),
            }
            for s in sites
        }


def board_from_recording(recording, window: int = 256) -> PriceBoard:
    """Rebuild a :class:`PriceBoard` from a flight recording's settlements.

    The §2 published-contract-summaries signal, derived offline: each
    ``settlement`` event becomes a :class:`PricePoint`, in recording
    order, through the same rolling window as a live board.  Works on
    sim and live recordings alike (times are in the recording's clock
    domain).
    """
    board = PriceBoard(window=window)
    for event in recording.of_kind("settlement"):
        completion = event.get("completion")
        board.publish_point(
            PricePoint(
                time=completion if completion is not None else event["t"],
                site_id=event["site_id"],
                unit_price=event["price"] / event["runtime"],
                on_time=bool(event["on_time"]),
            )
        )
    return board
