"""Pricing policies for server bids.

The paper (§6): "Our site policies act as if the price is derived
directly from the original value function, i.e., client bid value and
price are equivalent, although a pricing strategy may propose a
different price."  :class:`BidValuePricing` is that default;
:class:`DiscountedPricing` demonstrates the hook ("in practice, it may
be useful to charge prices below the bid price to provide incentives for
buyers to bid truthfully", §2).
"""

from __future__ import annotations

import abc

from repro.errors import MarketError
from repro.site.admission import AdmissionDecision
from repro.tasks.bid import TaskBid


class PricingPolicy(abc.ABC):
    """Maps (bid, admission evaluation) to the price quoted in a server bid."""

    @abc.abstractmethod
    def quote(self, bid: TaskBid, decision: AdmissionDecision) -> float:
        """Expected price for the task at its expected completion time."""


class BidValuePricing(PricingPolicy):
    """The paper's default: price equals the bid's expected yield."""

    def quote(self, bid: TaskBid, decision: AdmissionDecision) -> float:
        return decision.expected_yield


class DiscountedPricing(PricingPolicy):
    """Charge a fixed fraction of the expected yield (price below bid).

    ``fraction=0.9`` quotes 90% of the expected yield, leaving the buyer
    surplus that rewards truthful bidding.
    """

    def __init__(self, fraction: float = 0.9) -> None:
        if not 0.0 < fraction <= 1.0:
            raise MarketError(f"pricing fraction must be in (0, 1], got {fraction!r}")
        self.fraction = float(fraction)

    def quote(self, bid: TaskBid, decision: AdmissionDecision) -> float:
        return self.fraction * decision.expected_yield
