"""A multi-site task-service economy driven by a workload trace.

Ties everything together: a stream of client bids (from a workload
trace) negotiated by a broker across several task-service sites, with
contracts settled as tasks complete.  This is the full Figure-1 system;
the single-site experiments of §5–§6 are the special case of one site.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import MarketError
from repro.market.broker import Broker, NegotiationOutcome
from repro.market.sites import MarketSite
from repro.sim.kernel import Simulator
from repro.tasks.bid import TaskBid
from repro.workload.trace import Trace


@dataclass
class EconomyResult:
    """Aggregate outcome of a market run."""

    outcomes: list[NegotiationOutcome]
    sites: list[MarketSite]
    sim: Simulator

    @property
    def accepted(self) -> int:
        return sum(1 for o in self.outcomes if o.accepted)

    @property
    def rejected(self) -> int:
        return sum(1 for o in self.outcomes if not o.accepted)

    @property
    def total_revenue(self) -> float:
        return sum(s.revenue for s in self.sites)

    @property
    def revenue_by_site(self) -> dict[str, float]:
        return {s.site_id: s.revenue for s in self.sites}

    @property
    def contracts_by_site(self) -> dict[str, int]:
        return {s.site_id: len(s.contracts) for s in self.sites}

    def summary(self) -> dict:
        return {
            "bids": len(self.outcomes),
            "accepted": self.accepted,
            "rejected": self.rejected,
            "total_revenue": self.total_revenue,
            "revenue_by_site": self.revenue_by_site,
            "contracts_by_site": self.contracts_by_site,
            "on_time_rates": {s.site_id: s.on_time_rate for s in self.sites},
        }


class MarketEconomy:
    """Drive a trace of client bids through a broker and its sites.

    Each trace row becomes a :class:`TaskBid` released at its arrival
    time; negotiation is instantaneous (the paper's protocol is a single
    request/response exchange).
    """

    def __init__(self, sim: Simulator, broker: Broker) -> None:
        self.sim = sim
        self.broker = broker
        self.outcomes: list[NegotiationOutcome] = []

    def offer(self, bid: TaskBid) -> NegotiationOutcome:
        """Negotiate one bid right now."""
        outcome = self.broker.negotiate(bid)
        self.outcomes.append(outcome)
        return outcome

    def schedule_trace(self, trace: Trace, client_id: str = "client") -> None:
        """Enqueue every trace row as a bid at its arrival time.

        The market layer keeps the paper's accurate-prediction assumption:
        the declared bid runtime is the true runtime (the trace's
        ``estimate`` column is ignored here).
        """
        import math

        for arrival, runtime, value, decay, bound, _estimate in trace.iter_rows():
            bid = TaskBid(
                runtime=float(runtime),
                value=float(value),
                decay=float(decay),
                bound=None if math.isinf(bound) else float(bound),
                client_id=client_id,
                released_at=float(arrival),
            )
            self.sim.schedule_at(float(arrival), self.offer, bid, tag="bid")

    def run(self) -> EconomyResult:
        """Run the simulation to completion and collect the result."""
        self.sim.run()
        for site in self.sites:
            if not site.engine.all_work_done():
                raise MarketError(f"site {site.site_id!r} drained with work outstanding")
        flight = getattr(self.broker, "flight", None)
        if flight is not None:
            # closing books per site: the audit's reconciliation anchor
            for site in self.sites:
                flight.site_summary(
                    site.clock.now,
                    site.site_id,
                    revenue=site.revenue,
                    contracts=len(site.contracts),
                    quotes_issued=site.quotes_issued,
                    quotes_declined=site.quotes_declined,
                )
        return EconomyResult(outcomes=self.outcomes, sites=self.sites, sim=self.sim)

    @property
    def sites(self) -> list[MarketSite]:
        return self.broker.sites


def run_market(
    trace: Trace,
    sites: Sequence[MarketSite],
    broker: Optional[Broker] = None,
    flight=None,
) -> EconomyResult:
    """Convenience wrapper: negotiate *trace* across *sites* and run.

    Passing a ``FlightRecorder`` as *flight* attaches it to the broker
    and every site, records each site's capacity/policy up front, and
    writes per-site closing summaries when the run drains.
    """
    if broker is None:
        broker = Broker(sites=list(sites))
    sims = {s.sim for s in sites}
    if len(sims) != 1:
        raise MarketError("all sites must share one simulator")
    if flight is not None:
        broker.flight = flight
        for site in sites:
            site.flight = flight
            flight.site_open(
                site.clock.now,
                site.site_id,
                capacity=site.engine.processors.count,
                heuristic=site.engine.heuristic.name,
                threshold=getattr(site.admission, "threshold", None),
                discount_rate=getattr(site.admission, "discount_rate", None),
            )
    economy = MarketEconomy(next(iter(sims)), broker)
    economy.schedule_trace(trace)
    return economy.run()
