"""A task-service site participating in the market.

:class:`MarketSite` wraps the scheduling engine
(:class:`~repro.site.service.TaskServiceSite`) with the §6 negotiation
procedure:

1. integrate the proposed task into the candidate schedule,
2. determine its expected yield there,
3. apply the slack acceptance heuristic,
4. if worthwhile, issue a server bid (expected completion + price),
5. on contract award, execute the task; settlement happens at actual
   completion through the contract's value function.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import MarketError
from repro.scheduling.base import SchedulingHeuristic
from repro.sim.kernel import Simulator
from repro.site.admission import SlackAdmission
from repro.site.service import TaskServiceSite
from repro.tasks.bid import ServerBid, TaskBid
from repro.tasks.contract import Contract
from repro.tasks.task import Task
from repro.market.pricing import BidValuePricing, PricingPolicy


class MarketSite:
    """One seller in the task-service market.

    Parameters
    ----------
    sim, processors, heuristic:
        Passed to the underlying scheduling engine.
    admission:
        The slack policy used to decide which bids are worth answering.
    pricing:
        Pricing policy for quotes (default: bid-value pricing).
    quote_ttl:
        Time-to-live stamped on every quote (sim time units).  A quote
        reflects the candidate schedule at quote time; past its expiry
        the site refuses the award (``award`` raises) and the broker
        must re-solicit.  ``None`` (default) keeps quotes open-ended.
    restart_policy:
        Forwarded to the engine: the fate of tasks killed by node
        crashes (see :mod:`repro.faults.restart`).
    """

    def __init__(
        self,
        sim: Simulator,
        site_id: str,
        processors: int,
        heuristic: SchedulingHeuristic,
        admission: Optional[SlackAdmission] = None,
        pricing: Optional[PricingPolicy] = None,
        preemption: bool = False,
        discard_expired: bool = False,
        price_board=None,
        obs=None,
        quote_ttl: Optional[float] = None,
        restart_policy=None,
        flight=None,
    ) -> None:
        if quote_ttl is not None and not quote_ttl > 0:
            raise MarketError(f"quote_ttl must be > 0, got {quote_ttl!r}")
        self.sim = sim
        self.site_id = site_id
        self.admission = admission if admission is not None else SlackAdmission()
        self.pricing = pricing if pricing is not None else BidValuePricing()
        self.quote_ttl = quote_ttl
        self.engine = TaskServiceSite(
            sim,
            processors=processors,
            heuristic=heuristic,
            admission=None,  # admission is exercised at quote time, not submit time
            preemption=preemption,
            discard_expired=discard_expired,
            site_id=site_id,
            restart_policy=restart_policy,
            obs=obs,
        )
        #: the quoting/award clock — the engine's Clock view, shared verbatim
        self.clock = self.engine.clock
        self.engine.finish_listeners.append(self._on_task_finished)
        self._contract_of: dict[int, Contract] = {}  # task tid -> contract
        self.contracts: list[Contract] = []
        #: optional PriceBoard that receives every settlement (§2's
        #: "publish summaries of recent contracts")
        self.price_board = price_board
        #: optional FlightRecorder receiving quote/settlement events
        self.flight = flight
        #: callbacks invoked as fn(contract, task) after each settlement —
        #: the resilience layer re-bids breached tasks through these and
        #: budgeted clients reconcile committed spend
        self.settlement_listeners: list = []
        self.revenue = 0.0
        self.quotes_issued = 0
        self.quotes_declined = 0
        self.expired_awards_refused = 0

    # ------------------------------------------------------------------
    # Phase 1: quoting
    # ------------------------------------------------------------------
    def quote(self, bid: TaskBid) -> Optional[ServerBid]:
        """Evaluate *bid* against the current candidate schedule.

        Returns a server bid when the task's slack clears the site's
        threshold; ``None`` is a rejection.  Quoting does not reserve
        capacity — the quote reflects the schedule at this instant, per
        the paper's expectation semantics.
        """
        probe = self._task_for(bid)
        decision = self.admission.evaluate(self.engine, probe)
        if not decision.accept:
            self.quotes_declined += 1
            if self.flight is not None:
                self.flight.quote(self.clock.now, self.site_id, bid, decision, None)
            return None
        self.quotes_issued += 1
        server_bid = ServerBid(
            site_id=self.site_id,
            bid_id=bid.bid_id,
            expected_completion=decision.expected_completion,
            expected_price=self.pricing.quote(bid, decision),
            expected_slack=decision.slack,
            expires_at=None if self.quote_ttl is None else self.clock.now + self.quote_ttl,
        )
        if self.flight is not None:
            self.flight.quote(self.clock.now, self.site_id, bid, decision, server_bid)
        return server_bid

    # ------------------------------------------------------------------
    # Phase 2: award and execution
    # ------------------------------------------------------------------
    def award(self, bid: TaskBid, server_bid: ServerBid) -> Contract:
        """Form the contract and start executing the task.

        An expired quote is refused: its terms were computed against a
        schedule that has since changed, so the broker must revalidate
        (re-solicit a fresh quote) rather than hold the site to it.
        """
        if server_bid.site_id != self.site_id:
            raise MarketError(
                f"server bid for site {server_bid.site_id!r} awarded to {self.site_id!r}"
            )
        if server_bid.expired(self.clock.now):
            self.expired_awards_refused += 1
            if self.flight is not None:
                self.flight.quote_expired(self.clock.now, self.site_id, server_bid)
            raise MarketError(
                f"quote for bid {server_bid.bid_id} expired at "
                f"{server_bid.expires_at:g} (now {self.clock.now:g}); "
                "re-solicit before awarding"
            )
        contract = Contract(bid, server_bid, signed_at=self.clock.now)
        task = self._task_for(bid)
        contract.task_tid = task.tid
        self._contract_of[task.tid] = contract
        self.contracts.append(contract)
        self.engine.submit(task, force=True)
        return contract

    def _task_for(self, bid: TaskBid) -> Task:
        # the value function decays from the client's release time when
        # declared; otherwise from now (instant-negotiation semantics)
        arrival = bid.released_at if bid.released_at is not None else self.clock.now
        if arrival > self.clock.now:
            raise MarketError(
                f"bid {bid.bid_id} released in the future ({arrival} > {self.clock.now})"
            )
        return Task(
            arrival=arrival,
            runtime=bid.runtime,
            vf=bid.value_function(),
            demand=bid.demand,
        )

    def _on_task_finished(self, task: Task) -> None:
        contract = self._contract_of.pop(task.tid, None)
        if contract is None:
            return  # task not under contract (direct engine submission)
        if task.completion is None:
            raise MarketError(f"finished task {task.tid} has no completion time")
        if task.state.value == "cancelled":
            price = contract.settle_breach(self.clock.now)
            outcome = "breached"
        else:
            price = contract.settle(task.completion, release=task.arrival)
            outcome = "completed"
        self.revenue += price
        if self.flight is not None:
            self.flight.settlement(self.clock.now, contract, outcome)
        if self.price_board is not None:
            self.price_board.publish(contract)
        for listener in self.settlement_listeners:
            listener(contract, task)

    # ------------------------------------------------------------------
    @property
    def open_contracts(self) -> int:
        return len(self._contract_of)

    @property
    def on_time_rate(self) -> float:
        settled = [c for c in self.contracts if c.settled]
        if not settled:
            return 0.0
        return sum(1 for c in settled if c.on_time) / len(settled)

    def __repr__(self) -> str:
        return (
            f"<MarketSite {self.site_id!r} contracts={len(self.contracts)} "
            f"revenue={self.revenue:.1f}>"
        )
