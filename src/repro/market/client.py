"""Budgeted clients (§2's currency premise).

"We envision that each user or group is assigned a budget to spend on
computing service over each time interval, as in previous economic
resource managers."  A :class:`BudgetedClient` holds currency that
recharges every interval, submits its tasks as bids through a broker
while funds last, and commits the agreed price of each contract against
its balance (reconciling to the settled price when the task finishes).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import MarketError
from repro.market.broker import Broker, NegotiationOutcome
from repro.sim.kernel import Simulator
from repro.tasks.bid import TaskBid
from repro.tasks.contract import Contract


class BudgetedClient:
    """A client whose bidding is limited by a recharging budget.

    Parameters
    ----------
    sim, broker:
        The simulation and the broker that negotiates on the client's
        behalf.
    budget_per_interval:
        Currency granted at the start of every interval.
    interval:
        Recharge period (``None`` = a single non-recharging grant).
    carry_over:
        Whether unspent budget accumulates across intervals (default
        False: use-it-or-lose-it, the common allocation policy).
    """

    def __init__(
        self,
        sim: Simulator,
        broker: Broker,
        budget_per_interval: float,
        interval: Optional[float] = None,
        carry_over: bool = False,
        client_id: str = "client",
    ) -> None:
        if budget_per_interval < 0:
            raise MarketError(f"budget must be >= 0, got {budget_per_interval!r}")
        if interval is not None and interval <= 0:
            raise MarketError(f"interval must be > 0, got {interval!r}")
        self.sim = sim
        self.broker = broker
        self.client_id = client_id
        self.budget_per_interval = float(budget_per_interval)
        self.interval = interval
        self.carry_over = carry_over
        self.available = float(budget_per_interval)
        self.spent_committed = 0.0
        self.contracts: list[Contract] = []
        self.skipped_for_budget = 0
        self.rejected_by_market = 0
        #: open commitments by contract id, reconciled at settlement
        self._commitment_of: dict[int, float] = {}
        self.breach_refunds = 0.0
        for site in broker.sites:
            site.settlement_listeners.append(self._on_settlement)
        if interval is not None:
            sim.schedule(interval, self._recharge, tag=f"{client_id}:recharge", daemon=True)

    # ------------------------------------------------------------------
    def _recharge(self) -> None:
        if self.carry_over:
            self.available += self.budget_per_interval
        else:
            self.available = self.budget_per_interval
        assert self.interval is not None
        self.sim.schedule(
            self.interval, self._recharge, tag=f"{self.client_id}:recharge", daemon=True
        )

    # ------------------------------------------------------------------
    def submit(
        self,
        runtime: float,
        value: float,
        decay: float,
        bound: Optional[float] = None,
    ) -> Optional[NegotiationOutcome]:
        """Bid for one task now; returns None when the budget cannot cover it.

        The client commits the *agreed* price at award time (the maximum
        it can be charged if served as promised); the difference against
        the eventually settled price is reconciled by
        :meth:`reconcile`.
        """
        if value > self.available:
            self.skipped_for_budget += 1
            return None
        bid = TaskBid(
            runtime=runtime, value=value, decay=decay, bound=bound,
            client_id=self.client_id, released_at=self.sim.now,
        )
        outcome = self.broker.negotiate(bid)
        if outcome.contract is None:
            self.rejected_by_market += 1
            return outcome
        commitment = max(0.0, outcome.contract.agreed_price)
        self.available -= commitment
        self.spent_committed += commitment
        self._commitment_of[outcome.contract.contract_id] = commitment
        self.contracts.append(outcome.contract)
        return outcome

    # ------------------------------------------------------------------
    def _on_settlement(self, contract: Contract, task) -> None:
        """Reconcile committed spend when one of our contracts breaches.

        A breached contract settles at the value-function floor, not the
        agreed price — without this adjustment ``spent_committed`` would
        keep carrying the full commitment and drift away from actual
        settlements.  The refund (commitment minus the penalty-adjusted
        settled price) is returned to the available balance immediately.
        """
        commitment = self._commitment_of.get(contract.contract_id)
        if commitment is None or not contract.settled:
            return
        if task.state.value != "cancelled":
            return  # served contracts reconcile in bulk via reconcile()
        assert contract.actual_price is not None
        refund = commitment - contract.actual_price
        self._commitment_of.pop(contract.contract_id)
        self.available += refund
        self.spent_committed -= refund
        self.breach_refunds += refund

    # ------------------------------------------------------------------
    @property
    def settled_spend(self) -> float:
        """Total actually paid across settled contracts (penalties are
        negative spend — the site pays the client)."""
        return sum(
            c.actual_price for c in self.contracts if c.settled and c.actual_price is not None
        )

    def reconcile(self) -> float:
        """Difference between committed and settled spend (refund if > 0).

        Call after the simulation drains; raises if contracts are still
        open.
        """
        open_contracts = [c for c in self.contracts if not c.settled]
        if open_contracts:
            raise MarketError(
                f"{len(open_contracts)} contracts still open; run the "
                "simulation to completion before reconciling"
            )
        return self.spent_committed - self.settled_spend

    def summary(self) -> dict:
        return {
            "client_id": self.client_id,
            "contracts": len(self.contracts),
            "skipped_for_budget": self.skipped_for_budget,
            "rejected_by_market": self.rejected_by_market,
            "spent_committed": self.spent_committed,
            "settled_spend": self.settled_spend,
            "available": self.available,
            "breach_refunds": self.breach_refunds,
        }
