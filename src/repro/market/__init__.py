"""The market layer: bidding, negotiation, and contracts across sites.

Implements Figure 1 and §6's protocol: a client (or broker acting for
it) sends a sealed :class:`~repro.tasks.bid.TaskBid` to a set of task
service sites; each site that finds the task worthwhile answers with a
:class:`~repro.tasks.bid.ServerBid` quoting an expected completion time
and price from its candidate schedule; the client selects a site, a
:class:`~repro.tasks.contract.Contract` is formed, and the task runs —
settling at the contract's value function when it actually completes.

Pricing is pluggable (§2 notes Vickrey-style pricing as an option but
evaluates bid-price contracts); selection strategies likewise.
"""

from repro.market.broker import (
    Broker,
    NegotiationOutcome,
    best_surplus,
    best_yield,
    earliest_completion,
)
from repro.market.client import BudgetedClient
from repro.market.economy import EconomyResult, MarketEconomy, run_market
from repro.market.pricing import BidValuePricing, DiscountedPricing, PricingPolicy
from repro.market.protocol import LatentNegotiator, NegotiationRecord
from repro.market.signals import PriceBoard, PricePoint
from repro.market.sites import MarketSite

__all__ = [
    "BidValuePricing",
    "Broker",
    "BudgetedClient",
    "DiscountedPricing",
    "EconomyResult",
    "LatentNegotiator",
    "MarketEconomy",
    "MarketSite",
    "NegotiationOutcome",
    "NegotiationRecord",
    "PriceBoard",
    "PricePoint",
    "PricingPolicy",
    "best_surplus",
    "best_yield",
    "earliest_completion",
    "run_market",
]
