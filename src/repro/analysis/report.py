"""Run reports: ledger + timeline rolled into one summary dict/table.

``run_report`` combines the accounting view (yields, rejections,
penalties) with the execution view (utilization, queue depths,
preemptions) and a per-value-class breakdown — the numbers a site
operator would actually watch.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.analysis.timeline import SiteTimeline
from repro.metrics.tables import format_table
from repro.site.accounting import YieldLedger


def _class_breakdown(ledger: YieldLedger) -> list[dict]:
    """Split finished tasks into low/high unit-value halves at the
    geometric midpoint (the same recovery rule Trace.value_skew_realized
    uses) and report earnings per class."""
    records = [r for r in ledger.records if r.outcome != "rejected"]
    if not records:
        return []
    unit = np.array([r.value / r.runtime for r in records])
    lo, hi = float(unit.min()), float(unit.max())
    if hi <= lo * 1.0000001:
        classes = ["all"] * len(records)
    else:
        threshold = np.sqrt(lo * hi)
        classes = ["high" if u > threshold else "low" for u in unit]
    rows = []
    for label in sorted(set(classes)):
        members = [r for r, c in zip(records, classes) if c == label]
        realized = sum(r.realized_yield for r in members)
        potential = sum(r.value for r in members)
        rows.append(
            {
                "class": label,
                "tasks": len(members),
                "realized_yield": realized,
                "potential_value": potential,
                "capture_rate": realized / potential if potential else 0.0,
            }
        )
    return rows


def run_report(
    ledger: YieldLedger,
    timeline: Optional[SiteTimeline] = None,
    obs=None,
    resilience=None,
) -> dict:
    """Structured summary of one site run.

    Returns a dict with up to five sections: ``accounting`` (ledger
    summary), ``execution`` (timeline stats, when a timeline was
    attached), ``by_class`` (per-value-class earnings), ``telemetry``
    (the attached observer's full snapshot — metrics, per-run rows, span
    retention, profile) when *obs* is given, and ``resilience`` (the
    recovery books — failovers attempted/succeeded, value recovered vs
    lost, per-site breaker open time) when a
    :class:`~repro.resilience.manager.ResilienceManager` is given.
    """
    report = {
        "accounting": ledger.summary(),
        "by_class": _class_breakdown(ledger),
    }
    if timeline is not None:
        report["execution"] = {
            "makespan": timeline.makespan,
            "utilization": timeline.utilization(),
            "queue_length": timeline.queue_length_stats(),
            "preemptions": timeline.preemption_count(),
            "segments": len(timeline.segments),
        }
    if obs is not None:
        report["telemetry"] = obs.snapshot()
    if resilience is not None:
        report["resilience"] = resilience.summary()
    return report


def format_report(report: dict) -> str:
    """Human-readable rendering of :func:`run_report`'s output."""
    lines = []
    acc = report["accounting"]
    lines.append(
        f"accounting: yield {acc['total_yield']:.1f} "
        f"(rate {acc['yield_rate']:.2f}) over {acc['active_interval']:.1f} time units"
    )
    lines.append(
        f"  tasks: {acc['submitted']} submitted / {acc['completed']} completed / "
        f"{acc['rejected']} rejected / {acc['cancelled']} cancelled; "
        f"mean delay {acc['mean_delay']:.1f}; penalties {acc['penalties_paid']:.1f}"
    )
    execution = report.get("execution")
    if execution:
        q = execution["queue_length"]
        lines.append(
            f"execution: utilization {execution['utilization']:.1%}, "
            f"queue mean {q['mean']:.1f} / max {q['max']}, "
            f"{execution['preemptions']} preemptions, "
            f"{execution['segments']} segments, makespan {execution['makespan']:.1f}"
        )
    if report["by_class"]:
        lines.append(format_table(report["by_class"], title="earnings by value class"))
    resilience = report.get("resilience")
    if resilience:
        lines.append(
            f"resilience: {resilience['failovers_attempted']:g} failovers "
            f"attempted / {resilience['failovers_contracted']:g} contracted / "
            f"{resilience['failovers_completed']:g} completed; "
            f"value recovered {resilience['value_recovered']:.1f} vs "
            f"lost to breach {resilience['value_lost_to_breach']:.1f}"
        )
        open_time = resilience.get("breaker_open_time") or {}
        opened = {s: t for s, t in open_time.items() if t > 0}
        if opened:
            per_site = ", ".join(
                f"{site}={t:.1f}" for site, t in sorted(opened.items())
            )
            lines.append(
                f"  breakers: {resilience['breaker_opens']:g} opens; "
                f"open time {per_site}"
            )
    telemetry = report.get("telemetry")
    if telemetry and telemetry.get("metrics"):
        metrics = telemetry["metrics"]
        counters = {
            name: snap["value"]
            for name, snap in metrics.items()
            if snap.get("type") == "counter"
        }
        shown = ", ".join(f"{k}={v:g}" for k, v in sorted(counters.items())[:6])
        lines.append(f"telemetry: {len(metrics)} metrics ({shown}, ...)")
    return "\n".join(lines)
