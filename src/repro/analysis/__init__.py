"""Post-hoc analysis of site runs: timelines, gantt charts, reports.

The site engine exposes observer hooks (start/preempt/finish); a
:class:`SiteTimeline` subscribes to them and records every execution
segment, queue-length change, and outcome.  On top of that:

* :mod:`repro.analysis.gantt` renders per-node ASCII gantt charts,
* :mod:`repro.analysis.report` summarizes a run (delay distributions,
  per-class earnings, utilization/queue time series).
"""

from repro.analysis.curves import render_curves
from repro.analysis.gantt import render_gantt
from repro.analysis.report import run_report
from repro.analysis.timeline import ExecutionSegment, SiteTimeline

__all__ = [
    "ExecutionSegment",
    "SiteTimeline",
    "render_curves",
    "render_gantt",
    "run_report",
]
