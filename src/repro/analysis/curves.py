"""ASCII line plots for figure results.

The repository has no plotting dependency by design; these text plots
give the CLI a visual for each regenerated figure — good enough to see
peaks, crossovers, and orderings, which is exactly what the shape
criteria are about.
"""

from __future__ import annotations

import math
from typing import Mapping, Optional, Sequence

_GLYPHS = "ox+*#%@&$~"

Point = tuple[float, float]


def _scale(values: Sequence[float], size: int, log: bool = False) -> list[int]:
    vals = [math.log10(v) for v in values] if log else list(values)
    lo, hi = min(vals), max(vals)
    if hi <= lo:
        return [0 for _ in vals]
    return [
        min(size - 1, int(round((v - lo) / (hi - lo) * (size - 1)))) for v in vals
    ]


def render_curves(
    series: Mapping[object, Sequence[Point]],
    width: int = 64,
    height: int = 16,
    title: Optional[str] = None,
    log_x: bool = False,
) -> str:
    """Render ``{line_label: [(x, y), ...]}`` as an ASCII plot.

    Each line gets a glyph; cells where lines collide show ``*``-free
    precedence (first line drawn wins — the legend disambiguates).  A
    horizontal rule marks y = 0 when the data spans it.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return f"{title}\n(no data)" if title else "(no data)"
    if log_x and any(x <= 0 for x, _ in points):
        raise ValueError("log_x requires strictly positive x values")

    xs = sorted({x for x, _ in points})
    ys = [y for _, y in points]
    y_lo, y_hi = min(ys), max(ys)
    x_cols = dict(zip(xs, _scale(xs, width, log=log_x)))

    grid = [[" "] * width for _ in range(height)]

    # zero line
    if y_lo < 0 < y_hi:
        zero_row = height - 1 - _scale([y_lo, 0.0, y_hi], height)[1]
        for c in range(width):
            grid[zero_row][c] = "-"

    legend = []
    for idx, (label, pts) in enumerate(series.items()):
        glyph = _GLYPHS[idx % len(_GLYPHS)]
        legend.append(f"{glyph}={label}")
        sorted_pts = sorted(pts)
        rows = [
            height - 1 - r
            for r in _scale([y_lo, *(y for _, y in sorted_pts), y_hi], height)[1:-1]
        ]
        cols = [x_cols[x] for x, _ in sorted_pts]
        # connect consecutive points with vertical fill for readability
        for (c0, r0), (c1, r1) in zip(zip(cols, rows), list(zip(cols, rows))[1:]):
            for c in range(c0, c1 + 1):
                if c1 != c0:
                    frac = (c - c0) / (c1 - c0)
                else:
                    frac = 0.0
                r = int(round(r0 + frac * (r1 - r0)))
                if grid[r][c] in (" ", "-"):
                    grid[r][c] = glyph
        for c, r in zip(cols, rows):  # actual data points always visible
            grid[r][c] = glyph

    lines = []
    if title:
        lines.append(title)
    lines.append(f"y: {y_lo:g} .. {y_hi:g}")
    lines.extend("|" + "".join(row) + "|" for row in grid)
    x_label = "x(log10)" if log_x else "x"
    lines.append(f"{x_label}: {xs[0]:g} .. {xs[-1]:g}")
    lines.append("legend: " + "  ".join(legend))
    return "\n".join(lines)
