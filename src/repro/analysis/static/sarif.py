"""SARIF 2.1.0 rendering for ``repro lint --format sarif``.

One run, one tool (``repro-lint``), one result per finding — the subset
GitHub code scanning consumes for PR annotations.  Output is fully
deterministic (sorted keys, fixed indent, trailing newline) so CI can
``cmp`` it against a committed golden.

Column convention: SARIF regions are 1-based, our diagnostics carry
0-based AST column offsets, hence ``startColumn = col + 1``.
"""

from __future__ import annotations

import json

from repro.analysis.static.diagnostics import _ENGINE_CODES, RULES
from repro.analysis.static.engine import LintRun

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def _rule_descriptor(code: str) -> dict[str, object]:
    rule = RULES.get(code)
    if rule is not None:
        return {
            "id": code,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
            "fullDescription": {"text": rule.rationale},
        }
    # engine pseudo-codes (E999 parse errors, NQA000 stale noqa)
    return {
        "id": code,
        "name": _ENGINE_CODES.get(code, code.lower()),
        "shortDescription": {"text": _ENGINE_CODES.get(code, code)},
    }


def render_sarif(run: LintRun) -> str:
    """The full SARIF document for one lint run, as a JSON string."""
    codes_present = sorted({diag.code for diag in run.diagnostics})
    # catalog rules always ship (stable driver metadata); pseudo-codes
    # only when present, so a clean run and a parse-error run differ
    # exactly where they should
    rule_ids = list(RULES) + [c for c in codes_present if c not in RULES]
    results = [
        {
            "ruleId": diag.code,
            "level": "error",
            "message": {"text": diag.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": diag.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": diag.line,
                            "startColumn": diag.col + 1,
                        },
                    }
                }
            ],
        }
        for diag in run.diagnostics
    ]
    doc = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": [_rule_descriptor(code) for code in rule_ids],
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=1, sort_keys=True) + "\n"
