"""Per-line ``# repro: noqa`` suppression comments.

Syntax (the colon after ``repro`` is required, the one after ``noqa``
optional; codes are comma- or space-separated)::

    risky()  # repro: noqa DET002           -- suppress DET002 here
    risky()  # repro: noqa: DET002, OBS001  -- suppress two rules
    risky()  # repro: noqa                  -- suppress every rule (blanket)

Suppressions are *per physical line*: a diagnostic is suppressed when a
noqa comment on its reported line names its code (or is blanket).  The
project convention — enforced in review, not by the tool — is that every
noqa carries a justification in the surrounding comment.

Unused suppressions are themselves reported by the engine (as NQA000
pseudo-diagnostics) when ``--strict-noqa`` is set, so dead suppressions
cannot accumulate.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

_NOQA = re.compile(
    r"#\s*repro:\s*noqa(?::?\s+(?P<codes>[A-Z]+\d+(?:[,\s]+[A-Z]+\d+)*))?\s*(?:#|$)",
)
_CODE = re.compile(r"[A-Z]+\d+")


@dataclass
class Suppression:
    """One noqa comment: the line it covers and the codes it names."""

    line: int
    codes: frozenset[str]  # empty = blanket (suppress everything)
    used: bool = field(default=False, compare=False)

    def covers(self, code: str) -> bool:
        return not self.codes or code in self.codes


def collect_suppressions(source: str) -> dict[int, Suppression]:
    """Map line number → :class:`Suppression` for every noqa comment.

    Comments are found with :mod:`tokenize` so string literals that
    merely *mention* noqa (like this module's docstring) are ignored.
    Falls back to empty on tokenization errors — the AST parse will
    report the real syntax problem.
    """
    suppressions: dict[int, Suppression] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _NOQA.search(token.string)
            if not match:
                continue
            raw = match.group("codes") or ""
            codes = frozenset(_CODE.findall(raw))
            line = token.start[0]
            suppressions[line] = Suppression(line=line, codes=codes)
    except tokenize.TokenError:
        return {}
    return suppressions


def apply_suppressions(
    diagnostics: list,
    suppressions: dict[int, Suppression],
) -> list:
    """Split *diagnostics* into kept findings, marking used suppressions.

    Returns the diagnostics whose line carries no matching noqa; each
    matching suppression is flagged ``used`` so the engine can report
    stale ones.
    """
    kept = []
    for diag in diagnostics:
        suppression = suppressions.get(diag.line)
        if suppression is not None and suppression.covers(diag.code):
            suppression.used = True
            continue
        kept.append(diag)
    return kept
