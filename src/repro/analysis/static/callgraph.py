"""Project-wide import graph and best-effort call graph.

This is the substrate of the interprocedural rules (DET006, ASY001,
WAL001): one registration pass indexes every function and class in the
analyzed tree under its *module identity* (pragma-aware, via
:mod:`repro.analysis.static.modulemap` semantics — the engine passes the
resolved module per file), a fixpoint over module-level bindings chases
re-export chains (``from repro.obs import FlightRecorder`` lands on
``repro.obs.flight.FlightRecorder``), and a per-function resolution pass
turns call sites into edges.

Resolution is deliberately an *under*-approximation: a call the graph
cannot attribute to a known function contributes no edge (its dotted
``qualified`` name is still recorded so effect detectors can match
stdlib calls).  That keeps the rules built on top quiet — a missed edge
can hide a finding, never invent one.  The resolvable cases:

* names imported (aliased or not) from analyzed modules, through any
  depth of package re-exports;
* module-level functions and classes called by bare name;
* ``self.method()`` — the enclosing class, then its bases (transitively,
  within the analyzed tree);
* ``self.attr.method()`` where the attribute's class is inferred from a
  constructor assignment, an ``AnnAssign``, or an annotated ``__init__``
  parameter (``Optional[X]`` / ``X | None`` unwrap to ``X``);
* local variables bound to a constructor call or annotated parameter,
  including loop variables over a ``list[X]``-typed attribute;
* nested ``def``s: a synthetic edge from the enclosing function, so
  their effects surface at the definition site.

Two local idioms get pseudo-qualified names so the effect layer can
treat them as stdlib detectors: ``proc.wait()`` on a variable bound to
``subprocess.Popen(...)`` becomes ``subprocess.Popen.wait``, and
``writer.write()`` on an ``asyncio.StreamWriter``-annotated name becomes
``asyncio.StreamWriter.write``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.analysis.static.astutils import ImportMap

#: Annotations treated as "element type T" containers for loop variables.
_SEQUENCE_NAMES = frozenset({"list", "List", "tuple", "Tuple", "Sequence", "Iterable"})
#: Annotation wrappers unwrapped to their argument type.
_OPTIONAL_NAMES = frozenset({"Optional"})

#: Depth guard for re-export chasing (cycles in module bindings).
_MAX_CHASE = 16


@dataclass
class ParsedModule:
    """One analyzed file, under its resolved module identity."""

    path: str
    module: str
    tree: ast.Module


@dataclass
class FunctionInfo:
    """One function or method in the analyzed tree."""

    fid: str  # "module:qualname"
    module: str
    qualname: str  # "f", "Class.method", "outer.inner"
    name: str
    path: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    is_async: bool
    class_cid: Optional[str] = None  # "module:Class" for methods


@dataclass
class ClassInfo:
    """One class: its methods, bases, and inferred attribute types."""

    cid: str  # "module:ClassName"
    module: str
    name: str
    base_exprs: list[ast.expr] = field(default_factory=list)
    base_cids: list[str] = field(default_factory=list)
    methods: dict[str, str] = field(default_factory=dict)  # name -> fid
    #: self.<attr> -> ("obj" | "list", class cid)
    attr_types: dict[str, tuple[str, str]] = field(default_factory=dict)


@dataclass
class CallRecord:
    """One call site inside a function, as resolved as we could get it."""

    node: ast.Call
    qualified: Optional[str]  # dotted path ("time.time", "subprocess.Popen")
    target: Optional[str]  # fid of the resolved analyzed function
    terminal_attr: Optional[str]  # f in a.b.f(...)


def iter_body_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Every node in *func*'s body except nested function/class bodies.

    Lambda bodies are included — a lambda handed out as a callback still
    runs its calls in the enclosing function's world (e.g. on the same
    event loop), which is exactly what the async rules care about.
    """
    stack: list[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` rendered as a string, for Name/Attribute chains."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


class ProjectGraph:
    """Function/class index + call edges over one analyzed file set."""

    def __init__(self, parsed: list[ParsedModule]) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.modules: dict[str, ParsedModule] = {}
        #: module -> name -> ("func", fid) | ("class", cid) | ("import", dotted)
        self.exports: dict[str, dict[str, tuple[str, str]]] = {}
        self.imports: dict[str, ImportMap] = {}  # module -> file import map
        self.calls: dict[str, list[CallRecord]] = {}
        #: caller fid -> callee fids (call edges + synthetic nested-def edges)
        self.edges: dict[str, list[str]] = {}
        self.functions_by_path: dict[str, list[str]] = {}

        for pm in sorted(parsed, key=lambda p: p.path):
            self.modules[pm.module] = pm
            self.imports[pm.module] = ImportMap.from_tree(pm.tree)
            self._register_module(pm)
        self._resolve_bases()
        self._infer_attr_types()
        for fid in sorted(self.functions):
            self._resolve_calls(fid)
        self._add_nested_edges()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def _register_module(self, pm: ParsedModule) -> None:
        exports = self.exports.setdefault(pm.module, {})
        for node in pm.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                    exports[local] = ("import", target)
            elif isinstance(node, ast.ImportFrom) and not node.level:
                base = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    dotted = f"{base}.{alias.name}" if base else alias.name
                    exports[local] = ("import", dotted)
        self._register_scope(pm, pm.tree.body, qual_prefix="", class_cid=None)

    def _register_scope(
        self,
        pm: ParsedModule,
        body: list[ast.stmt],
        qual_prefix: str,
        class_cid: Optional[str],
    ) -> None:
        exports = self.exports[pm.module]
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{qual_prefix}{node.name}"
                fid = f"{pm.module}:{qualname}"
                self.functions[fid] = FunctionInfo(
                    fid=fid,
                    module=pm.module,
                    qualname=qualname,
                    name=node.name,
                    path=pm.path,
                    node=node,
                    is_async=isinstance(node, ast.AsyncFunctionDef),
                    class_cid=class_cid,
                )
                self.functions_by_path.setdefault(pm.path, []).append(fid)
                if not qual_prefix:
                    exports[node.name] = ("func", fid)
                if class_cid is not None and qual_prefix.count(".") == qualname.count("."):
                    self.classes[class_cid].methods[node.name] = fid
                self._register_scope(
                    pm, node.body, qual_prefix=f"{qualname}.", class_cid=None
                )
            elif isinstance(node, ast.ClassDef):
                qualname = f"{qual_prefix}{node.name}"
                cid = f"{pm.module}:{qualname}"
                self.classes[cid] = ClassInfo(
                    cid=cid,
                    module=pm.module,
                    name=qualname,
                    base_exprs=list(node.bases),
                )
                if not qual_prefix:
                    exports[node.name] = ("class", cid)
                self._register_scope(
                    pm, node.body, qual_prefix=f"{qualname}.", class_cid=cid
                )

    # ------------------------------------------------------------------
    # Name resolution (fixpoint over module-level bindings)
    # ------------------------------------------------------------------
    def resolve_qualified(
        self, dotted: str, _depth: int = 0
    ) -> Optional[tuple[str, str]]:
        """``("func", fid)`` / ``("class", cid)`` for a dotted path, if analyzed.

        Chases re-export chains (``repro.obs.FlightRecorder`` →
        ``repro.obs.flight.FlightRecorder``) up to a depth guard.
        """
        if _depth > _MAX_CHASE:
            return None
        parts = dotted.split(".")
        for i in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:i])
            if prefix in self.modules:
                return self._resolve_in_module(prefix, parts[i:], _depth)
        return None

    def _resolve_in_module(
        self, module: str, rest: list[str], depth: int
    ) -> Optional[tuple[str, str]]:
        entry = self.exports.get(module, {}).get(rest[0])
        if entry is None:
            return None
        kind, target = entry
        if kind == "import":
            dotted = ".".join([target, *rest[1:]])
            return self.resolve_qualified(dotted, depth + 1)
        if kind == "func":
            return ("func", target) if len(rest) == 1 else None
        # kind == "class"
        if len(rest) == 1:
            return ("class", target)
        if len(rest) == 2:
            fid = self.class_method(target, rest[1])
            return ("func", fid) if fid is not None else None
        return None

    def class_method(
        self, cid: str, name: str, _seen: Optional[set[str]] = None
    ) -> Optional[str]:
        """Method *name* on class *cid*, searching bases transitively."""
        seen = _seen if _seen is not None else set()
        if cid in seen:
            return None
        seen.add(cid)
        info = self.classes.get(cid)
        if info is None:
            return None
        fid = info.methods.get(name)
        if fid is not None:
            return fid
        for base in info.base_cids:
            fid = self.class_method(base, name, seen)
            if fid is not None:
                return fid
        return None

    def _resolve_bases(self) -> None:
        for cid in sorted(self.classes):
            info = self.classes[cid]
            for expr in info.base_exprs:
                resolved = self._class_of_annotation(expr, info.module)
                if resolved is not None and resolved[0] == "obj":
                    info.base_cids.append(resolved[1])

    # ------------------------------------------------------------------
    # Type-of-annotation / type-of-expression helpers
    # ------------------------------------------------------------------
    def _class_of_annotation(
        self, ann: Optional[ast.AST], module: str
    ) -> Optional[tuple[str, str]]:
        """``("obj"|"list", cid)`` for an annotation expression, if analyzed."""
        if ann is None:
            return None
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            try:
                ann = ast.parse(ann.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
            # X | None (either side)
            for side in (ann.left, ann.right):
                if not (isinstance(side, ast.Constant) and side.value is None):
                    resolved = self._class_of_annotation(side, module)
                    if resolved is not None:
                        return resolved
            return None
        if isinstance(ann, ast.Subscript):
            head = ann.value
            head_name = head.id if isinstance(head, ast.Name) else (
                head.attr if isinstance(head, ast.Attribute) else None
            )
            if head_name in _OPTIONAL_NAMES:
                return self._class_of_annotation(ann.slice, module)
            if head_name in _SEQUENCE_NAMES:
                inner = self._class_of_annotation(ann.slice, module)
                if inner is not None and inner[0] == "obj":
                    return ("list", inner[1])
            return None
        dotted = _dotted_name(ann)
        if dotted is None:
            return None
        resolved = self._resolve_dotted_in(module, dotted)
        if resolved is not None and resolved[0] == "class":
            return ("obj", resolved[1])
        return None

    def _resolve_dotted_in(self, module: str, dotted: str) -> Optional[tuple[str, str]]:
        """Resolve a dotted name as seen from inside *module*."""
        head, _, rest = dotted.partition(".")
        entry = self.exports.get(module, {}).get(head)
        if entry is not None:
            kind, target = entry
            if kind == "import":
                full = f"{target}.{rest}" if rest else target
                return self.resolve_qualified(full)
            if not rest:
                return (("func", target) if kind == "func" else ("class", target))
            if kind == "class" and rest and "." not in rest:
                fid = self.class_method(target, rest)
                return ("func", fid) if fid is not None else None
            return None
        # fall back to the file's import map semantics (function-local
        # imports included)
        imports = self.imports.get(module)
        if imports is None:
            return None
        resolved = imports.alias_for(head)
        if resolved is None:
            return None
        full = f"{resolved}.{rest}" if rest else resolved
        return self.resolve_qualified(full)

    def _annotation_dotted(self, ann: Optional[ast.AST]) -> Optional[str]:
        if ann is None:
            return None
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            try:
                ann = ast.parse(ann.value, mode="eval").body
            except SyntaxError:
                return None
        return _dotted_name(ann)

    def _infer_attr_types(self) -> None:
        """Infer ``self.<attr>`` classes from constructors and annotations."""
        for cid in sorted(self.classes):
            info = self.classes[cid]
            for mname in sorted(info.methods):
                func = self.functions[info.methods[mname]]
                node = func.node
                assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                param_types: dict[str, tuple[str, str]] = {}
                for arg in [*node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs]:
                    resolved = self._class_of_annotation(arg.annotation, info.module)
                    if resolved is not None:
                        param_types[arg.arg] = resolved
                for sub in iter_body_nodes(node):
                    target: Optional[ast.AST] = None
                    value: Optional[ast.AST] = None
                    if isinstance(sub, ast.AnnAssign):
                        target = sub.target
                        if self._is_self_attr(target):
                            resolved = self._class_of_annotation(
                                sub.annotation, info.module
                            )
                            if resolved is not None:
                                info.attr_types.setdefault(target.attr, resolved)  # type: ignore[union-attr]
                        continue
                    if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                        target, value = sub.targets[0], sub.value
                    if target is None or not self._is_self_attr(target):
                        continue
                    assert isinstance(target, ast.Attribute)
                    if isinstance(value, ast.Name) and value.id in param_types:
                        info.attr_types.setdefault(target.attr, param_types[value.id])
                    elif isinstance(value, ast.Call):
                        ctor = self._constructed_class(value, info.module)
                        if ctor is not None:
                            info.attr_types.setdefault(target.attr, ("obj", ctor))

    @staticmethod
    def _is_self_attr(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        )

    def _constructed_class(self, call: ast.Call, module: str) -> Optional[str]:
        dotted = _dotted_name(call.func)
        if dotted is None:
            return None
        resolved = self._resolve_dotted_in(module, dotted)
        if resolved is not None and resolved[0] == "class":
            return resolved[1]
        return None

    # ------------------------------------------------------------------
    # Call resolution
    # ------------------------------------------------------------------
    def _resolve_calls(self, fid: str) -> None:
        func = self.functions[fid]
        node = func.node
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        imports = self.imports[func.module]
        cls = self.classes.get(func.class_cid) if func.class_cid else None

        # -- flow-insensitive local environment -------------------------
        local_types: dict[str, tuple[str, str]] = {}
        popen_names: set[str] = set()
        writer_names: set[str] = set()
        for arg in [*node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs]:
            resolved = self._class_of_annotation(arg.annotation, func.module)
            if resolved is not None:
                local_types[arg.arg] = resolved
            dotted = self._annotation_dotted(arg.annotation)
            if dotted is not None and dotted.split(".")[-1] == "StreamWriter":
                writer_names.add(arg.arg)
        for sub in iter_body_nodes(node):
            if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                target, value = sub.targets[0], sub.value
                if isinstance(target, ast.Name) and isinstance(value, ast.Call):
                    ctor = self._constructed_class(value, func.module)
                    if ctor is not None:
                        local_types.setdefault(target.id, ("obj", ctor))
                    qualified = imports.resolve(value.func)
                    if qualified == "subprocess.Popen":
                        popen_names.add(target.id)
            elif isinstance(sub, (ast.For, ast.AsyncFor)) and isinstance(
                sub.target, ast.Name
            ):
                elem = self._element_type(sub.iter, cls, local_types)
                if elem is not None:
                    local_types.setdefault(sub.target.id, ("obj", elem))
            elif isinstance(sub, ast.withitem) and isinstance(
                sub.optional_vars, ast.Name
            ) and isinstance(sub.context_expr, ast.Call):
                ctor = self._constructed_class(sub.context_expr, func.module)
                if ctor is not None:
                    local_types.setdefault(sub.optional_vars.id, ("obj", ctor))

        # -- call records -----------------------------------------------
        records: list[CallRecord] = []
        edges: list[str] = []
        body_calls = [n for n in iter_body_nodes(node) if isinstance(n, ast.Call)]
        for call in sorted(body_calls, key=lambda c: (c.lineno, c.col_offset)):
            record = self._resolve_one_call(
                call, func, cls, imports, local_types, popen_names, writer_names
            )
            records.append(record)
            if record.target is not None:
                edges.append(record.target)
        self.calls[fid] = records
        self.edges[fid] = edges

    def _element_type(
        self,
        iterable: ast.AST,
        cls: Optional[ClassInfo],
        local_types: dict[str, tuple[str, str]],
    ) -> Optional[str]:
        if self._is_self_attr(iterable) and cls is not None:
            assert isinstance(iterable, ast.Attribute)
            entry = cls.attr_types.get(iterable.attr)
        elif isinstance(iterable, ast.Name):
            entry = local_types.get(iterable.id)
        else:
            entry = None
        if entry is not None and entry[0] == "list":
            return entry[1]
        return None

    def _resolve_one_call(
        self,
        call: ast.Call,
        func: FunctionInfo,
        cls: Optional[ClassInfo],
        imports: ImportMap,
        local_types: dict[str, tuple[str, str]],
        popen_names: set[str],
        writer_names: set[str],
    ) -> CallRecord:
        callee = call.func
        terminal = callee.attr if isinstance(callee, ast.Attribute) else None
        qualified = imports.resolve(callee)
        target: Optional[str] = None

        if qualified is not None:
            resolved = self.resolve_qualified(qualified)
            if resolved is not None:
                kind, ident = resolved
                target = ident if kind == "func" else self.class_method(ident, "__init__")
        elif isinstance(callee, ast.Name):
            name = callee.id
            # nested def in an enclosing scope of this function
            prefix = func.qualname
            while target is None and prefix:
                target = self.functions.get(f"{func.module}:{prefix}.{name}", None) and (
                    f"{func.module}:{prefix}.{name}"
                )
                prefix = prefix.rsplit(".", 1)[0] if "." in prefix else ""
            if target is None:
                entry = self.exports.get(func.module, {}).get(name)
                if entry is not None:
                    kind, ident = entry
                    if kind == "func":
                        target = ident
                    elif kind == "class":
                        target = self.class_method(ident, "__init__")
        elif isinstance(callee, ast.Attribute):
            base = callee.value
            attr = callee.attr
            if isinstance(base, ast.Name):
                if base.id == "self" and func.class_cid is not None:
                    target = self.class_method(func.class_cid, attr)
                elif base.id in popen_names and qualified is None:
                    qualified = f"subprocess.Popen.{attr}"
                elif base.id in writer_names and qualified is None:
                    qualified = f"asyncio.StreamWriter.{attr}"
                elif base.id in local_types and local_types[base.id][0] == "obj":
                    target = self.class_method(local_types[base.id][1], attr)
            elif self._is_self_attr(base) and cls is not None:
                assert isinstance(base, ast.Attribute)
                entry = cls.attr_types.get(base.attr)
                if entry is not None and entry[0] == "obj":
                    target = self.class_method(entry[1], attr)
        return CallRecord(
            node=call, qualified=qualified, target=target, terminal_attr=terminal
        )

    def _add_nested_edges(self) -> None:
        """Synthetic edge enclosing → nested def (effects surface at the def)."""
        for fid in sorted(self.functions):
            func = self.functions[fid]
            prefix = f"{func.qualname}."
            for other_fid in sorted(self.functions):
                other = self.functions[other_fid]
                if (
                    other.module == func.module
                    and other.qualname.startswith(prefix)
                    and "." not in other.qualname[len(prefix):]
                ):
                    self.edges.setdefault(fid, []).append(other_fid)
