"""AST-based determinism & invariant analyzer (``repro lint``).

Every result in this reproduction rests on contracts the test suite can
only spot-check after the fact: seeded RNG streams and sim-time clocks
(paper §4.1), bit-inert off-by-default feature configs, and pure
picklable experiment cells.  This package turns those conventions into
machine-checked invariants: a single stray ``time.time()``, unseeded
``np.random`` call, or unsorted ``set`` iteration in a scheduler is
caught at lint time instead of via a flaky golden-bytes diff.

Layers:

* :mod:`repro.analysis.static.diagnostics` — the :class:`Diagnostic`
  record and the :data:`RULES` catalog (code, summary, rationale).
* :mod:`repro.analysis.static.modulemap` — path → module identity and
  the project policy map (sim-path modules, allowlists, hot paths).
* :mod:`repro.analysis.static.noqa` — ``# repro: noqa RULE`` per-line
  suppression comments.
* :mod:`repro.analysis.static.rules_determinism` — DET001…DET004.
* :mod:`repro.analysis.static.rules_hygiene` — CFG001, EXP001, OBS001.
* :mod:`repro.analysis.static.engine` — file discovery, the two-pass
  analysis run, suppression and rule selection.
* :mod:`repro.analysis.static.report` — text / JSON rendering and the
  ``repro lint`` entry point (exit codes 0 clean / 1 findings /
  2 usage error, mirroring ``scripts/bench_compare.py``).
"""

from repro.analysis.static.diagnostics import RULES, Diagnostic, Rule
from repro.analysis.static.engine import LintRun, analyze_file, analyze_paths
from repro.analysis.static.report import main as lint_main
from repro.analysis.static.report import render_json, render_text

__all__ = [
    "RULES",
    "Diagnostic",
    "LintRun",
    "Rule",
    "analyze_file",
    "analyze_paths",
    "lint_main",
    "render_json",
    "render_text",
]
