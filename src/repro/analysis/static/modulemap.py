"""Path → module identity and the project policy map.

The analyzer's rules are scoped by *module identity* (``repro.sim.rng``,
``repro.scheduling.pool``, ``benchmarks.bench_micro``), not by raw file
path, so the policy survives checkouts at any directory depth and the
fixture corpus can impersonate any module via a file-level pragma::

    # repro-lint: module=repro.scheduling.example

(The pragma is honoured anywhere in the first ten lines; it exists for
the test fixtures and for vendored snippets — production code should
never need it.)
"""

from __future__ import annotations

import os
import re

#: Module whose whole point is to own the project's RNG entry points.
SEEDED_STREAM_MODULE = "repro.sim.rng"

#: Module that owns *all* heap state in the simulation kernel (the
#: EventQueue: head slot, lazy cancellation, pop_run batch draining).
EVENT_QUEUE_MODULE = "repro.sim.queue"

#: Packages whose code runs *inside* a simulation: behaviour here must be
#: a pure function of (workload, seed, config).
SIM_PATH_PREFIXES = (
    "repro.sim",
    "repro.scheduling",
    "repro.market",
    "repro.site",
    "repro.tasks",
    "repro.valuefn",
    "repro.workload",
    "repro.faults",
    "repro.resilience",
    "repro.resource",
)

#: Observability / measurement layers may read the wall clock: their
#: whole job is timing the real world, and they are forbidden (by design
#: and by the bit-identity test suite) from feeding back into sim state.
WALL_CLOCK_ALLOWLIST_PREFIXES = (
    "repro.obs",
    "repro.bench",
    "benchmarks",
    # the live service mode *is* the wall clock: its clocks, executor,
    # event loop, and the retrying client (repro.live.client: request
    # timeouts, backoff sleeps, monotonic deadlines) read real time by
    # design.  The boundary holds because live code reaches the shared
    # scheduling/market layers only through the Clock protocol
    # (repro.sim.clock) — those layers stay in SIM_PATH_PREFIXES and
    # stay forbidden.  One live module opts back OUT of this allowance:
    # repro.live.recovery is timestamp-passive (see below), so for it
    # the passivity rule wins over the package allowlist.
    "repro.live",
)

#: Packages whose iteration order directly decides scheduling tie-breaks.
HOT_PATH_PREFIXES = (
    "repro.sim",
    "repro.scheduling",
    "repro.market",
)

#: Timestamp-passive observability modules: they *consume* timestamps
#: (callers pass ``t`` from their own ``clock.now``) but must never read
#: a clock themselves — that keeps the flight-recorder/audit/replay
#: pipeline replayable in either clock domain, with wall time owned by
#: ``repro.live`` alone.
TIMESTAMP_PASSIVE_PREFIXES = (
    "repro.obs.flight",
    "repro.obs.prom",
    "repro.audit",
    "repro.replay",
    # crash recovery replays journaled timestamps: plan_recovery is a
    # pure function of the recording and apply_recovery takes `now` as a
    # parameter, so recovered settlements land at caller-chosen times —
    # never at times the module read off a clock itself
    "repro.live.recovery",
)

#: Presentation / tooling layers where print() IS the output channel.
PRINT_ALLOWLIST_PREFIXES = (
    "repro.cli",
    "repro.__main__",
    "repro.bench",
    "repro.analysis",  # ASCII gantt/curve renderers and the lint reporter
    "repro.metrics.tables",
    "repro.live.serve",  # the service CLI announces its address/drain on stdout
    "repro.audit",  # `repro audit` writes its report to stdout
    "repro.replay",  # `repro replay` writes its A/B table to stdout
    "scripts",
    "benchmarks",
    "examples",
    "tests",
)

_PRAGMA = re.compile(r"#\s*repro-lint:\s*module=([\w.]+)")

#: Top-level directories that map straight to a pseudo-package name.
_SCRIPT_DIRS = ("benchmarks", "scripts", "examples", "tests")


def module_pragma(source: str) -> str | None:
    """The ``# repro-lint: module=...`` override, if present near the top."""
    for line in source.splitlines()[:10]:
        match = _PRAGMA.search(line)
        if match:
            return match.group(1)
    return None


def module_name_for_path(path: str) -> str:
    """Best-effort dotted module identity for *path*.

    ``.../src/repro/sim/rng.py`` → ``repro.sim.rng``;
    ``benchmarks/bench_micro.py`` → ``benchmarks.bench_micro``;
    a path with no recognizable root maps to its stem (so policy scoped
    to ``repro.*`` simply does not apply).
    """
    normalized = os.path.normpath(path).replace(os.sep, "/")
    parts = [p for p in normalized.split("/") if p not in ("", ".")]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts.pop()
    for root in ("repro", *_SCRIPT_DIRS):
        if root in parts:
            tail = parts[parts.index(root):]
            return ".".join(tail) if tail else root
    return parts[-1] if parts else path


def _under(module: str, prefixes: tuple[str, ...]) -> bool:
    return any(module == p or module.startswith(p + ".") for p in prefixes)


def is_repro_library(module: str) -> bool:
    """Library code shipped in the ``repro`` package."""
    return module == "repro" or module.startswith("repro.")


def is_sim_path(module: str) -> bool:
    """Code whose behaviour must be a pure function of (workload, seed)."""
    return _under(module, SIM_PATH_PREFIXES) and not is_wall_clock_allowed(module)


def is_wall_clock_allowed(module: str) -> bool:
    return _under(module, WALL_CLOCK_ALLOWLIST_PREFIXES)


def is_hot_path(module: str) -> bool:
    return _under(module, HOT_PATH_PREFIXES)


def is_print_allowed(module: str) -> bool:
    return not is_repro_library(module) or _under(module, PRINT_ALLOWLIST_PREFIXES)


def is_live_service(module: str) -> bool:
    """The asyncio service layer: event-loop and WAL disciplines apply.

    Scope of ASY001/ASY002/WAL001 — the only package where an event loop
    runs on the wall clock and where PR 8's journal-before-act contract
    is load-bearing.
    """
    return _under(module, ("repro.live",))


def is_timestamp_passive(module: str) -> bool:
    """Observability code that takes timestamps as arguments, never reads them."""
    return _under(module, TIMESTAMP_PASSIVE_PREFIXES)
