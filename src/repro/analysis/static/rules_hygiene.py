"""Invariant-hygiene rules CFG001, EXP001, OBS001, OBS002."""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis.static.astutils import (
    FileContext,
    enclosing,
    enclosing_class,
    enclosing_function,
    nested_function_names,
)
from repro.analysis.static.diagnostics import Diagnostic
from repro.analysis.static.modulemap import (
    is_print_allowed,
    is_repro_library,
    is_timestamp_passive,
)

# ----------------------------------------------------------------------
# CFG001 — frozen-config mutation
# ----------------------------------------------------------------------

#: Methods of a frozen dataclass in which ``object.__setattr__(self, …)``
#: is the sanctioned idiom (field normalization at construction time).
_CONSTRUCTOR_METHODS = frozenset({"__init__", "__post_init__", "__new__"})


def frozen_dataclass_names(tree: ast.AST) -> set[str]:
    """Class names decorated ``@dataclass(frozen=True)`` in *tree*.

    Used by the engine's project-wide pre-pass; matching is by bare class
    name across files, which is the right trade-off for a single-project
    linter (config classes have distinctive names like
    ``ResilienceConfig``).
    """
    names: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for decorator in node.decorator_list:
            if not isinstance(decorator, ast.Call):
                continue
            func = decorator.func
            callee = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else None
            )
            if callee != "dataclass":
                continue
            for keyword in decorator.keywords:
                if (
                    keyword.arg == "frozen"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                ):
                    names.add(node.name)
    return names


def _frozen_typed_names(ctx: FileContext) -> set[str]:
    """Local names provably holding a frozen-dataclass instance.

    Covers direct construction (``cfg = ResilienceConfig(...)``) and
    annotations (``cfg: ResilienceConfig``, function parameters
    included).  Attribute-typed bindings (``self.cfg``) are out of scope
    — the ``object.__setattr__`` arm catches the mutations that matter
    there.
    """
    frozen = ctx.frozen_classes
    names: set[str] = set()

    def type_name(annotation: Optional[ast.AST]) -> Optional[str]:
        node = annotation
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value.strip()
        if isinstance(node, ast.Subscript):  # Optional[X] / Final[X]
            node = node.slice
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.Name):
            return node.id
        return None

    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            callee = node.value.func
            callee_name = (
                callee.id
                if isinstance(callee, ast.Name)
                else callee.attr if isinstance(callee, ast.Attribute) else None
            )
            if callee_name in frozen:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if type_name(node.annotation) in frozen:
                names.add(node.target.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for arg in [*node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs]:
                if arg.annotation is not None and type_name(arg.annotation) in frozen:
                    names.add(arg.arg)
    return names


def check_cfg001(ctx: FileContext) -> list[Diagnostic]:
    """Mutation of frozen config dataclasses outside their constructors.

    Two arms:

    * ``object.__setattr__(x, ...)`` anywhere except inside
      ``__init__`` / ``__post_init__`` / ``__new__`` of a class that is
      itself a frozen dataclass — the only place the bypass is
      legitimate.
    * plain ``x.attr = value`` where ``x`` is locally known to hold a
      frozen-dataclass instance (would raise at runtime; flagged
      statically so the test suite never has to reach the line).
    """
    if not is_repro_library(ctx.module):
        return []
    findings = []
    frozen_locals = _frozen_typed_names(ctx) if ctx.frozen_classes else set()
    for node in ctx.walk():
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "__setattr__"
                and isinstance(func.value, ast.Name)
                and func.value.id == "object"
            ):
                owner = enclosing_class(node, ctx.parents)
                method = enclosing_function(node, ctx.parents)
                sanctioned = (
                    owner is not None
                    and owner.name in ctx.frozen_classes
                    and method is not None
                    and getattr(method, "name", None) in _CONSTRUCTOR_METHODS
                )
                if not sanctioned:
                    findings.append(
                        Diagnostic(
                            path=ctx.path,
                            line=node.lineno,
                            col=node.col_offset,
                            code="CFG001",
                            message=(
                                "object.__setattr__ outside a frozen dataclass "
                                "constructor defeats config immutability; build "
                                "a new config with dataclasses.replace instead"
                            ),
                            module=ctx.module,
                        )
                    )
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in frozen_locals
                ):
                    findings.append(
                        Diagnostic(
                            path=ctx.path,
                            line=target.lineno,
                            col=target.col_offset,
                            code="CFG001",
                            message=(
                                f"attribute assignment on frozen config "
                                f"{target.value.id!r}; use dataclasses.replace"
                            ),
                            module=ctx.module,
                        )
                    )
    return findings


# ----------------------------------------------------------------------
# EXP001 — unpicklable experiment cells
# ----------------------------------------------------------------------


def _executor_names(tree: ast.AST) -> set[str]:
    """Names bound to a ``CellExecutor`` in *tree*.

    Covers ``with CellExecutor(...) as ex:``, ``ex = CellExecutor(...)``
    and parameters annotated ``: CellExecutor``.
    """
    names: set[str] = set()

    def is_cell_executor_call(node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        callee = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else None
        )
        return callee == "CellExecutor"

    for node in ast.walk(tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if is_cell_executor_call(item.context_expr) and isinstance(
                    item.optional_vars, ast.Name
                ):
                    names.add(item.optional_vars.id)
        elif isinstance(node, ast.Assign) and is_cell_executor_call(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for arg in [*node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs]:
                annotation = arg.annotation
                if isinstance(annotation, ast.Constant):
                    annotated = str(annotation.value).strip().strip('"')
                elif isinstance(annotation, ast.Name):
                    annotated = annotation.id
                elif isinstance(annotation, ast.Attribute):
                    annotated = annotation.attr
                else:
                    annotated = None
                if annotated == "CellExecutor":
                    names.add(arg.arg)
    return names


def check_exp001(ctx: FileContext) -> list[Diagnostic]:
    """Lambdas / nested functions submitted to a :class:`CellExecutor`.

    Cells execute in a process pool at ``workers > 1``: the callable and
    every argument must pickle.  Module-level functions pickle by
    reference; lambdas and closures do not — and worse, they *work* at
    ``workers=1`` (inline mode), so the hazard only detonates in the
    configuration CI exercises least.
    """
    executors = _executor_names(ctx.tree)
    if not executors:
        return []
    nested = nested_function_names(ctx.tree)
    findings = []
    for node in ctx.walk():
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "submit"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in executors
        ):
            continue
        hazards: list[tuple[ast.AST, str]] = []
        if node.args:
            fn = node.args[0]
            if isinstance(fn, ast.Lambda):
                hazards.append((fn, "lambda as the cell callable"))
            elif isinstance(fn, ast.Name) and fn.id in nested:
                hazards.append(
                    (fn, f"nested function {fn.id!r} as the cell callable")
                )
        for arg in [*node.args[1:], *[kw.value for kw in node.keywords]]:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Lambda):
                    hazards.append((sub, "lambda in cell arguments"))
                elif isinstance(sub, ast.Name) and sub.id in nested:
                    hazards.append((sub, f"nested function {sub.id!r} in cell arguments"))
        for offender, reason in hazards:
            findings.append(
                Diagnostic(
                    path=ctx.path,
                    line=offender.lineno,
                    col=offender.col_offset,
                    code="EXP001",
                    message=(
                        f"{reason}: cells must be module-level callables with "
                        "picklable arguments (breaks at workers > 1)"
                    ),
                    module=ctx.module,
                )
            )
    return findings


# ----------------------------------------------------------------------
# OBS001 — print in library code
# ----------------------------------------------------------------------


def check_obs001(ctx: FileContext) -> list[Diagnostic]:
    """Bare ``print`` calls in library modules.

    CLI / bench / analysis-rendering layers are allowlisted — print *is*
    their output channel.  ``if __name__ == "__main__"`` demo blocks are
    exempt too: they only run when the module is executed as a script.
    """
    if is_print_allowed(ctx.module):
        return []
    findings = []
    for node in ctx.walk():
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            continue
        if _in_main_guard(node, ctx):
            continue
        findings.append(
            Diagnostic(
                path=ctx.path,
                line=node.lineno,
                col=node.col_offset,
                code="OBS001",
                message=(
                    "print() in library code; report through the metrics "
                    "registry / span exporters (repro.obs) or logging"
                ),
                module=ctx.module,
            )
        )
    return findings


# ----------------------------------------------------------------------
# OBS002 — clock reads in timestamp-passive observability modules
# ----------------------------------------------------------------------


def check_obs002(ctx: FileContext) -> list[Diagnostic]:
    """Wall-clock reads in the recorder/audit/replay pipeline.

    These modules sit *inside* the wall-clock-allowlisted ``repro.obs``
    umbrella (DET002 does not apply there), yet their contract is
    stricter than the sim path's: they must not read any clock at all.
    Timestamps arrive as arguments from the caller's ``clock.now``, so a
    recording replays identically in either clock domain.
    """
    from repro.analysis.static.rules_determinism import _WALL_CLOCK_CALLS

    if not is_timestamp_passive(ctx.module):
        return []
    findings = []
    for node in ctx.walk():
        if not isinstance(node, ast.Call):
            continue
        qualified = ctx.imports.resolve(node.func)
        if qualified in _WALL_CLOCK_CALLS:
            findings.append(
                Diagnostic(
                    path=ctx.path,
                    line=node.lineno,
                    col=node.col_offset,
                    code="OBS002",
                    message=(
                        f"wall-clock read {qualified}() in timestamp-passive "
                        f"module {ctx.module}; accept t as a parameter from "
                        "the caller's clock.now (wall time belongs to "
                        "repro.live)"
                    ),
                    module=ctx.module,
                )
            )
    return findings


def _in_main_guard(node: ast.AST, ctx: FileContext) -> bool:
    guard = enclosing(node, ctx.parents, (ast.If,))
    while guard is not None:
        test = guard.test
        if (
            isinstance(test, ast.Compare)
            and isinstance(test.left, ast.Name)
            and test.left.id == "__name__"
        ):
            return True
        guard = enclosing(guard, ctx.parents, (ast.If,))
    return False
