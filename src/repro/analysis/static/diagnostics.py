"""Diagnostic records and the rule catalog.

A :class:`Rule` is pure metadata — code, one-line summary, rationale —
used by ``repro lint --help``-style listings, the JSON output schema,
and the documentation generator in ``docs/static_analysis.md``.  The
checking logic lives in the ``rules_*`` modules; keeping the catalog
separate means the CLI can validate ``--select`` arguments without
importing any AST machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Rule:
    """Metadata for one lint rule."""

    code: str
    name: str
    summary: str
    rationale: str


#: The full rule catalog, keyed by code.  Ordering is the report order.
RULES: dict[str, Rule] = {
    rule.code: rule
    for rule in (
        Rule(
            code="DET001",
            name="unseeded-rng",
            summary=(
                "RNG call (random.*, np.random.*, default_rng) outside "
                "the seeded-stream module repro.sim.rng"
            ),
            rationale=(
                "Every experiment derives all randomness from one root seed "
                "via RandomStreams; any other RNG entry point breaks "
                "reproducibility silently (paper §4.1)."
            ),
        ),
        Rule(
            code="DET002",
            name="wall-clock-in-sim-path",
            summary=(
                "wall-clock read (time.time, perf_counter, datetime.now) "
                "in sim-path code"
            ),
            rationale=(
                "Simulated behaviour must depend only on the sim clock; "
                "wall-clock reads are allowed only in the observability, "
                "benchmark, and CLI layers where they cannot feed back "
                "into scheduling decisions."
            ),
        ),
        Rule(
            code="DET003",
            name="unordered-iteration",
            summary=(
                "iteration over a set (or set-algebra result) in a "
                "sim/scheduling/market hot path without sorted(...)"
            ),
            rationale=(
                "Set iteration order varies with hash seeding and "
                "insertion history; in a scheduler it silently changes "
                "tie-breaks and therefore byte-identity of results."
            ),
        ),
        Rule(
            code="DET004",
            name="float-eq-sim-time",
            summary="float == / != on sim-time expressions",
            rationale=(
                "Sim-time arithmetic accumulates float error; exact "
                "equality on times makes behaviour depend on summation "
                "order.  Compare with tolerances or restructure around "
                "event identity."
            ),
        ),
        Rule(
            code="DET005",
            name="raw-heapq-in-sim",
            summary=(
                "direct heapq use in repro.sim outside the EventQueue "
                "module repro.sim.queue"
            ),
            rationale=(
                "The event queue owns all heap state in the kernel: its "
                "head slot, lazy-cancellation counters, and pop_run batch "
                "draining keep invariants a raw heappush/heappop bypasses. "
                "A second heap in repro.sim silently forks the ordering "
                "contract (stable (time, priority, seq) keys) that "
                "byte-identical replays depend on."
            ),
        ),
        Rule(
            code="DET006",
            name="transitive-wall-clock-or-rng",
            summary=(
                "sim-path call whose resolved callee transitively reaches "
                "a wall-clock read or unseeded RNG draw in another module"
            ),
            rationale=(
                "DET001/DET002 see one module at a time; a sim-path "
                "function calling a helper elsewhere that reads time.time() "
                "is exactly as non-reproducible.  The effect engine "
                "propagates WALL_CLOCK/RNG over the project call graph, "
                "cut at the sanctioned observability boundary, and flags "
                "the sim-path call site with a witness chain."
            ),
        ),
        Rule(
            code="ASY001",
            name="blocking-in-async",
            summary=(
                "blocking syscall (os.fsync, time.sleep, Popen.wait, "
                "subprocess.run …) reachable from an async def in "
                "repro.live"
            ),
            rationale=(
                "One blocked coroutine stalls every client on the event "
                "loop: bids stop being answered, deadlines keep draining. "
                "Blocking work must be offloaded (run_in_executor) or the "
                "suppression must argue why the stall is bounded and "
                "acceptable."
            ),
        ),
        Rule(
            code="ASY002",
            name="await-check-then-act",
            summary=(
                "self.<attr> read in an if/while test, an await that "
                "yields the loop, then a dependent mutation of the same "
                "attribute"
            ),
            rationale=(
                "Between the check and the act another task can run and "
                "invalidate the check — the single-threaded-until-await "
                "model makes these races easy to write and hard to see. "
                "Re-check after the await, or mutate before it."
            ),
        ),
        Rule(
            code="WAL001",
            name="act-before-journal",
            summary=(
                "spawn / client-response write / contract settlement in "
                "repro.live with no preceding journal-append intent on the "
                "intraprocedural path"
            ),
            rationale=(
                "PR 8's crash-durability contract: journal the intent, "
                "then act, so recovery can reconcile acts against intents. "
                "An act with no prior intent record is invisible to "
                "recovery — an orphan process or unaccounted settlement "
                "after a crash."
            ),
        ),
        Rule(
            code="CFG001",
            name="frozen-config-mutation",
            summary=(
                "attribute assignment (or object.__setattr__) on a frozen "
                "config dataclass outside its own constructor"
            ),
            rationale=(
                "Feature configs are frozen so an off-by-default config "
                "is provably bit-inert; mutating one after construction "
                "re-opens the door to mid-run behaviour drift."
            ),
        ),
        Rule(
            code="EXP001",
            name="unpicklable-cell",
            summary=(
                "lambda / nested function passed into a CellExecutor cell "
                "(pickle hazard at workers > 1)"
            ),
            rationale=(
                "Experiment cells must be module-level callables with "
                "picklable arguments: a closure runs fine inline but "
                "explodes (or worse, desyncs) under the process pool."
            ),
        ),
        Rule(
            code="OBS001",
            name="print-in-library",
            summary="bare print() in library code",
            rationale=(
                "Library layers report through the metrics registry and "
                "span exporters; stray prints corrupt the CLI's table "
                "output and are invisible to telemetry consumers."
            ),
        ),
        Rule(
            code="OBS002",
            name="clock-read-in-recorder",
            summary=(
                "wall-clock read in a timestamp-passive observability "
                "module (repro.obs.flight/prom, repro.audit, repro.replay, "
                "repro.live.recovery)"
            ),
            rationale=(
                "The flight recorder, Prometheus renderer, auditor, "
                "replayer, and crash-recovery planner consume timestamps "
                "their callers pass from clock.now; reading a clock "
                "directly would tie recordings to the recording machine's "
                "wall time and break sim/live symmetry.  Wall time is "
                "owned by the rest of repro.live alone."
            ),
        ),
    )
}


#: Names for the engine's own pseudo-codes (not part of the rule catalog).
_ENGINE_CODES = {"E999": "parse-error", "NQA000": "stale-noqa"}


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule violated at a specific file/line/column."""

    path: str
    line: int
    col: int
    code: str
    message: str
    module: str = ""
    suppressed: bool = field(default=False, compare=False)

    def format(self) -> str:
        """``path:line:col: CODE message`` — the text-report line."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_json(self) -> dict[str, object]:
        rule = RULES.get(self.code)
        name = rule.name if rule is not None else _ENGINE_CODES.get(self.code, self.code.lower())
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "name": name,
            "message": self.message,
            "module": self.module,
        }


def sort_key(diag: Diagnostic) -> tuple[str, int, int, str]:
    """Stable report order: path, then position, then code."""
    return (diag.path, diag.line, diag.col, diag.code)
