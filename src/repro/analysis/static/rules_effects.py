"""Interprocedural rules DET006 / ASY001 / ASY002 / WAL001.

These checkers consume the project-wide :class:`ProjectContext`
(call graph + effect index) the engine builds in pass 1.  They are the
cross-module counterparts of the flow-insensitive determinism rules:

* **DET006** closes the DET001/DET002 blind spot — sim-path code calling
  a helper *in another module* that reads the wall clock or draws from a
  global RNG.
* **ASY001** finds blocking syscalls reachable from ``async def`` bodies
  in ``repro.live`` (event-loop stalls).
* **ASY002** finds check-then-act races: shared ``self`` state read in a
  branch test, an ``await`` opening the interleaving window, then a
  dependent mutation of the same attribute.
* **WAL001** enforces the journal-before-act discipline from PR 8: in
  ``repro.live``, a spawn / client-response write / settlement must be
  preceded (lexically, within the function) by a journal-append intent.

All four under-approximate on purpose: an unresolved call contributes no
edge, so a finding always names a concrete witness chain.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.static.astutils import FileContext
from repro.analysis.static.callgraph import FunctionInfo, iter_body_nodes
from repro.analysis.static.diagnostics import Diagnostic
from repro.analysis.static.effects import (
    BLOCKING_IO,
    JOURNAL_APPEND,
    RESPONSE_WRITE,
    RNG,
    SETTLEMENT,
    SPAWN,
    WALL_CLOCK,
    direct_effects_of_call,
)
from repro.analysis.static.modulemap import (
    is_live_service,
    is_repro_library,
    is_sim_path,
    is_wall_clock_allowed,
)


def _file_functions(ctx: FileContext) -> list[FunctionInfo]:
    project = ctx.project
    if project is None:
        return []
    graph = project.graph
    return [graph.functions[fid] for fid in graph.functions_by_path.get(ctx.path, [])]


# ----------------------------------------------------------------------
# DET006 — sim-path code transitively reaching wall-clock / RNG effects
# ----------------------------------------------------------------------

_HAZARDS = (WALL_CLOCK, RNG)
_HAZARD_LABEL = {WALL_CLOCK: "wall-clock", RNG: "unseeded-RNG"}


def _det006_closure(ctx: FileContext) -> dict[str, set[str]]:
    """fid → hazard effects it reaches through *unsanctioned* modules.

    Seeds are direct hazards that the single-module rules do NOT already
    own: a wall-clock read in a module that is neither sim-path (DET002's
    beat) nor allowlisted, or an RNG draw outside the ``repro`` package
    (DET001's beat).  Propagation is cut at wall-clock-allowed modules —
    reaching ``repro.obs`` is sanctioned, whatever ``repro.obs`` does
    downstream.  Cached on the ProjectContext (one computation per run).
    """
    project = ctx.project
    assert project is not None
    cached = project.caches.get("det006")
    if cached is not None:
        return cached
    graph, effects = project.graph, project.effects
    hazard: dict[str, set[str]] = {}
    for fid in sorted(graph.functions):
        info = graph.functions[fid]
        direct = effects.direct[fid]
        seeds: set[str] = set()
        if (
            WALL_CLOCK in direct
            and not is_sim_path(info.module)
            and not is_wall_clock_allowed(info.module)
        ):
            seeds.add(WALL_CLOCK)
        if RNG in direct and not is_repro_library(info.module):
            seeds.add(RNG)
        if seeds:
            hazard[fid] = seeds
    changed = True
    while changed:
        changed = False
        for fid in sorted(graph.functions):
            if is_wall_clock_allowed(graph.functions[fid].module):
                continue  # sanctioned boundary: do not carry hazards across
            mine = hazard.setdefault(fid, set())
            for callee in graph.edges.get(fid, []):
                callee_info = graph.functions.get(callee)
                if callee_info is None:
                    continue
                if is_wall_clock_allowed(callee_info.module):
                    continue
                incoming = hazard.get(callee, set()) - mine
                if incoming:
                    for effect in sorted(incoming):
                        mine.add(effect)
                        project.hazard_via.setdefault((fid, effect), callee)
                    changed = True
    project.caches["det006"] = hazard
    return hazard


def _hazard_chain(ctx: FileContext, fid: str, effect: str) -> str:
    """Witness chain through the hazard closure (falls back to effect via)."""
    project = ctx.project
    assert project is not None
    graph, effects = project.graph, project.effects
    parts: list[str] = []
    current: Optional[str] = fid
    seen: set[str] = set()
    while current is not None and current not in seen:
        seen.add(current)
        info = graph.functions.get(current)
        parts.append(info.qualname if info is not None else current)
        witness = project.hazard_via.get((current, effect))
        if witness is None:
            # seed function: finish with the direct leaf label
            leaf = effects.via.get((current, effect))
            if leaf is not None and leaf not in graph.functions:
                parts.append(leaf)
            break
        current = witness
    return " -> ".join(parts)


def check_det006(ctx: FileContext) -> list[Diagnostic]:
    """Sim-path call sites whose resolved callee reaches a hazard."""
    if ctx.project is None or not is_sim_path(ctx.module):
        return []
    hazard = _det006_closure(ctx)
    graph = ctx.project.graph
    findings = []
    for func in _file_functions(ctx):
        for record in graph.calls.get(func.fid, []):
            if record.target is None:
                continue
            for effect in _HAZARDS:
                if effect not in hazard.get(record.target, ()):
                    continue
                callee = graph.functions[record.target]
                chain = _hazard_chain(ctx, record.target, effect)
                findings.append(
                    Diagnostic(
                        path=ctx.path,
                        line=record.node.lineno,
                        col=record.node.col_offset,
                        code="DET006",
                        message=(
                            f"sim-path function {func.qualname} reaches a "
                            f"{_HAZARD_LABEL[effect]} effect via "
                            f"{callee.module}: {chain}"
                        ),
                        module=ctx.module,
                    )
                )
    return findings


# ----------------------------------------------------------------------
# ASY001 — blocking effects reachable from async def bodies in repro.live
# ----------------------------------------------------------------------

def check_asy001(ctx: FileContext) -> list[Diagnostic]:
    """Event-loop stalls: blocking syscalls on the live service's loop.

    Reports at the offending call site inside the ``async def``: either a
    direct blocking call, or a call into a *synchronous* function whose
    effect closure contains ``BLOCKING_IO``.  Calls into other ``async``
    functions are skipped — their own bodies get checked at their own
    call sites, so the finding lands where the blocking actually enters
    the loop.
    """
    project = ctx.project
    if project is None or not is_live_service(ctx.module):
        return []
    graph, effects = project.graph, project.effects
    findings = []
    for func in _file_functions(ctx):
        if not func.is_async:
            continue
        for record in graph.calls.get(func.fid, []):
            direct = direct_effects_of_call(record)
            if BLOCKING_IO in direct:
                detail = direct[BLOCKING_IO]
            elif (
                record.target is not None
                and not graph.functions[record.target].is_async
                and BLOCKING_IO in effects.closure[record.target]
            ):
                detail = effects.chain(record.target, BLOCKING_IO)
            else:
                continue
            findings.append(
                Diagnostic(
                    path=ctx.path,
                    line=record.node.lineno,
                    col=record.node.col_offset,
                    code="ASY001",
                    message=(
                        f"blocking call on the event loop in async "
                        f"{func.qualname}: {detail}; offload with "
                        "run_in_executor or restructure"
                    ),
                    module=ctx.module,
                )
            )
    return findings


# ----------------------------------------------------------------------
# ASY002 — check-then-act races across await points
# ----------------------------------------------------------------------

def _stmt_line_spans(node: ast.AST) -> Iterator[tuple[str, int, str]]:
    """(kind, line, attr) events inside one async function body.

    kind is ``read`` (``self.X`` inside an ``if``/``while`` test),
    ``await`` (any Await / async-for / async-with), or ``write``
    (Assign/AugAssign target ``self.X``).
    """
    for sub in iter_body_nodes(node):
        if isinstance(sub, (ast.If, ast.While)):
            for inner in ast.walk(sub.test):
                if (
                    isinstance(inner, ast.Attribute)
                    and isinstance(inner.value, ast.Name)
                    and inner.value.id == "self"
                ):
                    yield ("read", inner.lineno, inner.attr)
        elif isinstance(sub, (ast.Await, ast.AsyncFor, ast.AsyncWith)):
            yield ("await", sub.lineno, "")
        targets: list[ast.AST] = []
        if isinstance(sub, ast.Assign):
            targets = list(sub.targets)
        elif isinstance(sub, ast.AugAssign):
            targets = [sub.target]
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                yield ("write", target.lineno, target.attr)


def check_asy002(ctx: FileContext) -> list[Diagnostic]:
    """Read of ``self.X`` in a test, an ``await``, then a write of ``self.X``.

    The await yields the loop: another task can observe/mutate the same
    attribute between the check and the act.  Purely intraprocedural and
    line-ordered — a mutation *before* the first await is fine.
    """
    project = ctx.project
    if project is None or not is_live_service(ctx.module):
        return []
    findings = []
    for func in _file_functions(ctx):
        if not func.is_async:
            continue
        events = sorted(_stmt_line_spans(func.node), key=lambda e: e[1])
        await_lines = [line for kind, line, _ in events if kind == "await"]
        if not await_lines:
            continue
        reads: dict[str, int] = {}
        flagged: set[tuple[str, int]] = set()
        for kind, line, attr in events:
            if kind == "read":
                reads.setdefault(attr, line)
            elif kind == "write" and attr in reads:
                read_line = reads[attr]
                if any(read_line < a < line for a in await_lines) and (
                    (attr, line) not in flagged
                ):
                    flagged.add((attr, line))
                    findings.append(
                        Diagnostic(
                            path=ctx.path,
                            line=line,
                            col=0,
                            code="ASY002",
                            message=(
                                f"check-then-act race in async {func.qualname}: "
                                f"self.{attr} read on line {read_line}, an await "
                                "yields the loop, then self."
                                f"{attr} is mutated; re-check after the await or "
                                "mutate before it"
                            ),
                            module=ctx.module,
                        )
                    )
    return findings


# ----------------------------------------------------------------------
# WAL001 — journal-before-act in repro.live
# ----------------------------------------------------------------------

_ACT_LABEL = {
    SPAWN: "subprocess spawn",
    RESPONSE_WRITE: "client response write",
    SETTLEMENT: "contract settlement",
}

_BLOCK_FIELDS = ("body", "orelse", "finalbody")


def _walk_no_defs(node: ast.AST) -> Iterator[ast.AST]:
    """DFS over *node* (inclusive) that never enters nested def/class bodies."""
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield current
        stack.extend(ast.iter_child_nodes(current))


def _header_exprs(stmt: ast.stmt) -> Iterator[ast.AST]:
    """Nodes evaluated by *stmt* itself, excluding nested blocks and defs."""
    for _field, value in ast.iter_fields(stmt):
        values = value if isinstance(value, list) else [value]
        for item in values:
            if not isinstance(item, ast.AST):
                continue
            if isinstance(item, (ast.stmt, ast.excepthandler)):
                continue
            yield from _walk_no_defs(item)


def _blocks_of(stmt: ast.stmt) -> Iterator[list[ast.stmt]]:
    for name in _BLOCK_FIELDS:
        block = getattr(stmt, name, None)
        if block:
            yield block
    for handler in getattr(stmt, "handlers", []) or []:
        if handler.body:
            yield handler.body


class _WalChecker:
    """Walks one function body tracking the journaled-yet flag."""

    def __init__(self, ctx: FileContext, func: FunctionInfo) -> None:
        self.ctx = ctx
        self.func = func
        project = ctx.project
        assert project is not None
        self.graph = project.graph
        self.effects = project.effects
        self.records = {
            id(record.node): record for record in self.graph.calls.get(func.fid, [])
        }
        self.findings: list[Diagnostic] = []

    def _call_journals(self, call: ast.Call) -> bool:
        record = self.records.get(id(call))
        if record is None:
            return False
        if JOURNAL_APPEND in direct_effects_of_call(record):
            return True
        return (
            record.target is not None
            and JOURNAL_APPEND in self.effects.closure[record.target]
        )

    def _subtree_journals(self, node: ast.AST) -> bool:
        return any(
            isinstance(sub, ast.Call) and self._call_journals(sub)
            for sub in ast.walk(node)
        )

    def _acts_in(self, nodes: list[ast.AST]) -> list[tuple[ast.Call, str]]:
        acts = []
        for node in nodes:
            if not isinstance(node, ast.Call):
                continue
            record = self.records.get(id(node))
            if record is None:
                continue
            direct = direct_effects_of_call(record)
            for effect in (SPAWN, RESPONSE_WRITE, SETTLEMENT):
                if effect in direct:
                    acts.append((node, effect))
        return acts

    def run(self) -> None:
        node = self.func.node
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        self._process(node.body, journaled=False)

    def _process(self, stmts: list[ast.stmt], journaled: bool) -> bool:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            header = list(_header_exprs(stmt))
            acts = self._acts_in(header)
            if acts and not journaled and not self._subtree_journals(stmt):
                for call, effect in acts:
                    self.findings.append(
                        Diagnostic(
                            path=self.ctx.path,
                            line=call.lineno,
                            col=call.col_offset,
                            code="WAL001",
                            message=(
                                f"{_ACT_LABEL[effect]} in {self.func.qualname} "
                                "with no preceding journal append on this path; "
                                "write the intent record (flight.intent/"
                                "recovery) before acting"
                            ),
                            module=self.ctx.module,
                        )
                    )
            if any(
                isinstance(item, ast.Call) and self._call_journals(item)
                for item in header
            ):
                journaled = True
            for block in _blocks_of(stmt):
                journaled = self._process(block, journaled) or journaled
        return journaled


def check_wal001(ctx: FileContext) -> list[Diagnostic]:
    """Journal-before-act: spawn/response/settlement needs a prior intent.

    Lexical, intraprocedural, and optimistic across branches: a journal
    append inside ``if self.flight is not None:`` counts for everything
    after the guard (strict dominance would punish the standard
    optional-recorder idiom).  The soundness trade-offs are documented in
    docs/static_analysis.md.
    """
    if ctx.project is None or not is_live_service(ctx.module):
        return []
    findings = []
    for func in _file_functions(ctx):
        checker = _WalChecker(ctx, func)
        checker.run()
        findings.extend(checker.findings)
    return findings
