"""File discovery and the two-pass analysis run.

Pass 1 parses every file once and collects project-wide facts (today:
the frozen-dataclass name registry CFG001 matches against).  Pass 2 runs
the selected rule checkers per file, then applies ``# repro: noqa``
suppressions.  Everything is deterministic: files are visited in sorted
order and diagnostics are reported in (path, line, col, code) order.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from repro.analysis.static.astutils import FileContext
from repro.analysis.static.callgraph import ParsedModule, ProjectGraph
from repro.analysis.static.diagnostics import RULES, Diagnostic, sort_key
from repro.analysis.static.effects import EffectIndex
from repro.analysis.static.modulemap import module_name_for_path, module_pragma
from repro.analysis.static.noqa import apply_suppressions, collect_suppressions
from repro.analysis.static.rules_determinism import (
    check_det001,
    check_det002,
    check_det003,
    check_det004,
    check_det005,
)
from repro.analysis.static.rules_effects import (
    check_asy001,
    check_asy002,
    check_det006,
    check_wal001,
)
from repro.analysis.static.rules_hygiene import (
    check_cfg001,
    check_exp001,
    check_obs001,
    check_obs002,
    frozen_dataclass_names,
)


class LintUsageError(Exception):
    """Bad invocation (unknown rule, missing path) — exit code 2."""


#: Rule code → checker.  Report order follows the RULES catalog.
CHECKS: dict[str, Callable[[FileContext], list[Diagnostic]]] = {
    "DET001": check_det001,
    "DET002": check_det002,
    "DET003": check_det003,
    "DET004": check_det004,
    "DET005": check_det005,
    "DET006": check_det006,
    "ASY001": check_asy001,
    "ASY002": check_asy002,
    "WAL001": check_wal001,
    "CFG001": check_cfg001,
    "EXP001": check_exp001,
    "OBS001": check_obs001,
    "OBS002": check_obs002,
}

#: Rules that need the project-wide call graph / effect index.  The
#: engine only pays for graph construction when the selection asks.
INTERPROCEDURAL_RULES = frozenset({"DET006", "ASY001", "ASY002", "WAL001"})

#: Pseudo-codes emitted by the engine itself (not selectable, never
#: suppressible): parse failures and stale noqa comments.
PARSE_ERROR = "E999"
STALE_NOQA = "NQA000"


@dataclass
class ProjectContext:
    """Call graph + effect index over one analyzed file set (pass 1).

    ``caches`` / ``hazard_via`` are scratch space for rule-level derived
    structures (today: DET006's gated hazard closure), computed once per
    run on first use and shared across files.
    """

    graph: ProjectGraph
    effects: EffectIndex
    caches: dict[str, dict] = field(default_factory=dict)
    hazard_via: dict[tuple[str, str], str] = field(default_factory=dict)


def build_project(parsed: Sequence[tuple[str, str, ast.Module]]) -> ProjectContext:
    """Build the interprocedural context from (path, module, tree) triples."""
    modules = [
        ParsedModule(path=path, module=module, tree=tree)
        for path, module, tree in parsed
    ]
    graph = ProjectGraph(modules)
    return ProjectContext(graph=graph, effects=EffectIndex(graph))


@dataclass
class LintRun:
    """The result of one analysis run."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    files_checked: int = 0

    @property
    def counts(self) -> dict[str, int]:
        """Findings per rule code, in report order."""
        by_code: dict[str, int] = {}
        for diag in self.diagnostics:
            by_code[diag.code] = by_code.get(diag.code, 0) + 1
        return dict(sorted(by_code.items()))

    @property
    def clean(self) -> bool:
        return not self.diagnostics


def resolve_selection(select: Optional[Iterable[str]]) -> tuple[str, ...]:
    """Validate a ``--select`` rule list against the catalog."""
    if select is None:
        return tuple(RULES)
    requested: list[str] = []
    for chunk in select:
        requested.extend(part.strip().upper() for part in chunk.split(",") if part.strip())
    unknown = [code for code in requested if code not in RULES]
    if unknown:
        known = ", ".join(RULES)
        raise LintUsageError(
            f"unknown rule(s) {', '.join(unknown)}; known rules: {known}"
        )
    if not requested:
        raise LintUsageError("--select given but no rule codes parsed")
    # preserve catalog order, drop duplicates
    return tuple(code for code in RULES if code in requested)


def discover_files(paths: Sequence[str]) -> list[str]:
    """Expand *paths* (files or directories) into sorted ``.py`` files."""
    files: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d != "__pycache__" and not d.startswith(".")
                )
                files.extend(
                    os.path.join(dirpath, name)
                    for name in sorted(filenames)
                    if name.endswith(".py")
                )
        else:
            raise LintUsageError(f"no such file or directory: {path}")
    if not files:
        raise LintUsageError(f"no Python files found under: {', '.join(paths)}")
    return sorted(dict.fromkeys(files))


def _parse(path: str) -> tuple[str, Optional[ast.Module], Optional[Diagnostic]]:
    """Read and parse one file; syntax failures become E999 diagnostics."""
    try:
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
    except (OSError, UnicodeDecodeError) as exc:
        return "", None, Diagnostic(
            path=path, line=1, col=0, code=PARSE_ERROR,
            message=f"cannot read file: {exc}",
        )
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return source, None, Diagnostic(
            path=path,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            code=PARSE_ERROR,
            message=f"syntax error: {exc.msg}",
        )
    return source, tree, None


def analyze_file(
    path: str,
    frozen_classes: frozenset[str],
    select: tuple[str, ...],
    strict_noqa: bool = False,
    source: Optional[str] = None,
    tree: Optional[ast.Module] = None,
    project: Optional[ProjectContext] = None,
) -> list[Diagnostic]:
    """Run the selected rules over one file and apply suppressions."""
    if source is None or tree is None:
        source, tree, failure = _parse(path)
        if failure is not None:
            return [failure]
        assert tree is not None
    module = module_pragma(source) or module_name_for_path(path)
    if project is None and INTERPROCEDURAL_RULES.intersection(select):
        # standalone single-file analysis still gets a (degenerate) graph
        project = build_project([(path, module, tree)])
    ctx = FileContext(
        path=path,
        module=module,
        source=source,
        tree=tree,
        frozen_classes=frozen_classes,
        project=project,
    )
    raw: list[Diagnostic] = []
    for code in select:
        raw.extend(CHECKS[code](ctx))
    suppressions = collect_suppressions(source)
    kept = apply_suppressions(raw, suppressions)
    if strict_noqa:
        # a suppression is only provably stale when every rule it could
        # serve actually ran: a noqa naming an unselected code (or a
        # blanket noqa under a narrow --select) might be used by the
        # rules we skipped
        full_selection = set(select) >= set(RULES)
        for line in sorted(suppressions):
            suppression = suppressions[line]
            checkable = (
                full_selection
                if not suppression.codes
                else suppression.codes.issubset(select)
            )
            if checkable and not suppression.used:
                kept.append(
                    Diagnostic(
                        path=path,
                        line=line,
                        col=0,
                        code=STALE_NOQA,
                        message=(
                            "noqa comment suppresses nothing"
                            + (
                                f" (codes: {', '.join(sorted(suppression.codes))})"
                                if suppression.codes
                                else ""
                            )
                        ),
                        module=module,
                    )
                )
    return kept


def analyze_paths(
    paths: Sequence[str],
    select: Optional[Iterable[str]] = None,
    strict_noqa: bool = False,
) -> LintRun:
    """Analyze every Python file under *paths*; the ``repro lint`` core."""
    selection = resolve_selection(select)
    files = discover_files(paths)

    # Pass 1: parse everything, build the project-wide frozen-class index
    # (and, when an interprocedural rule is selected, the call graph +
    # effect index over the same file set).
    parsed: list[tuple[str, str, Optional[ast.Module]]] = []
    failures: list[Diagnostic] = []
    frozen: set[str] = set()
    for path in files:
        source, tree, failure = _parse(path)
        if failure is not None:
            failures.append(failure)
            continue
        assert tree is not None
        frozen.update(frozen_dataclass_names(tree))
        parsed.append((path, source, tree))

    project: Optional[ProjectContext] = None
    if INTERPROCEDURAL_RULES.intersection(selection):
        project = build_project(
            [
                (path, module_pragma(source) or module_name_for_path(path), tree)
                for path, source, tree in parsed
                if tree is not None
            ]
        )

    # Pass 2: rules + suppression per file.
    run = LintRun(files_checked=len(files))
    run.diagnostics.extend(failures)
    frozen_index = frozenset(frozen)
    for path, source, tree in parsed:
        run.diagnostics.extend(
            analyze_file(
                path,
                frozen_index,
                selection,
                strict_noqa=strict_noqa,
                source=source,
                tree=tree,
                project=project,
            )
        )
    run.diagnostics.sort(key=sort_key)
    return run
