"""Per-function effect inference over the project call graph.

Each analyzed function gets a *direct* effect set from syntactic
detectors over its own body, then a *closure* set by propagating callee
effects backwards over :class:`~repro.analysis.static.callgraph.ProjectGraph`
edges to a fixpoint.  ``via`` links record one witness callee per
(function, effect) so rules can print a human-readable chain
(``_dispatch_loop -> site.execute -> JournalSink.write_line -> os.fsync()``).

The effect alphabet:

``WALL_CLOCK``
    reads the machine clock (``time.time`` and friends, ``datetime.now``)
``RNG``
    draws from an unseeded global RNG (``random.*``, ``numpy.random.*``)
``BLOCKING_IO``
    synchronous syscalls that stall an event loop (``os.fsync``,
    ``time.sleep``, ``subprocess.run``, ``Popen.wait`` …)
``JOURNAL_APPEND``
    writes a WAL/flight-journal record (``.intent(...)``, ``.recovery(...)``,
    or any resolved :class:`FlightRecorder` emitter)
``SPAWN``
    creates a subprocess (``subprocess.Popen``,
    ``asyncio.create_subprocess_exec``, ``os.fork`` …)
``RESPONSE_WRITE``
    writes bytes to a client (``StreamWriter.write``)
``SETTLEMENT``
    books contract revenue (``.settle(...)``, ``.settle_breach(...)``,
    ``.settle_abandoned(...)``)
``SHARED_MUTATION``
    assigns to ``self.<attr>`` (shared object state)

Detectors are *qualified-name* based wherever possible — the call graph
already rewrote ``proc.wait()`` / ``writer.write()`` into their
pseudo-qualified stdlib names — and fall back to terminal-attribute
matching only for the journal/settlement verbs, whose receivers are
duck-typed throughout ``repro.live``.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis.static.callgraph import CallRecord, ProjectGraph, iter_body_nodes
from repro.analysis.static.rules_determinism import _RNG_PREFIXES, _WALL_CLOCK_CALLS

WALL_CLOCK = "WALL_CLOCK"
RNG = "RNG"
BLOCKING_IO = "BLOCKING_IO"
JOURNAL_APPEND = "JOURNAL_APPEND"
SPAWN = "SPAWN"
RESPONSE_WRITE = "RESPONSE_WRITE"
SETTLEMENT = "SETTLEMENT"
SHARED_MUTATION = "SHARED_MUTATION"

ALL_EFFECTS = (
    WALL_CLOCK,
    RNG,
    BLOCKING_IO,
    JOURNAL_APPEND,
    SPAWN,
    RESPONSE_WRITE,
    SETTLEMENT,
    SHARED_MUTATION,
)

#: Qualified calls that block the calling thread.  ``subprocess.Popen``
#: itself is excluded (fork+exec returns promptly); its ``.wait()`` /
#: ``.communicate()`` pseudo-names carry the blocking effect instead.
BLOCKING_CALLS = frozenset(
    {
        "os.fsync",
        "os.fdatasync",
        "time.sleep",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen.wait",
        "subprocess.Popen.communicate",
        "socket.create_connection",
        "urllib.request.urlopen",
    }
)

#: Qualified calls that create a subprocess.
SPAWN_CALLS = frozenset(
    {
        "subprocess.Popen",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "asyncio.create_subprocess_exec",
        "asyncio.create_subprocess_shell",
        "os.fork",
        "os.posix_spawn",
        "os.spawnv",
    }
)

#: Terminal attributes that append a WAL/flight-journal record.  The
#: receivers are duck-typed (``self.flight``, a ``journal`` parameter…),
#: so attribute-name matching is the honest detector; ``intent`` and
#: ``recovery`` are the only verbs PR 8's WAL discipline treats as
#: journal-before-act markers.
JOURNAL_ATTRS = frozenset({"intent", "recovery"})

#: Terminal attributes that book contract revenue.
SETTLE_ATTRS = frozenset({"settle", "settle_breach", "settle_abandoned"})

#: Qualified calls that write a client response.
RESPONSE_CALLS = frozenset({"asyncio.StreamWriter.write"})


def direct_effects_of_call(record: CallRecord) -> dict[str, str]:
    """Effects a single call site triggers *directly*: effect → leaf label."""
    out: dict[str, str] = {}
    q = record.qualified
    if q is not None:
        if q in _WALL_CLOCK_CALLS:
            out[WALL_CLOCK] = f"{q}()"
        if q.startswith(_RNG_PREFIXES):
            out[RNG] = f"{q}()"
        if q in BLOCKING_CALLS:
            out[BLOCKING_IO] = f"{q}()"
        if q in SPAWN_CALLS:
            out[SPAWN] = f"{q}()"
        if q in RESPONSE_CALLS:
            out[RESPONSE_WRITE] = f"{q}()"
    if record.terminal_attr in JOURNAL_ATTRS:
        out[JOURNAL_APPEND] = f".{record.terminal_attr}(...)"
    if record.terminal_attr in SETTLE_ATTRS:
        out[SETTLEMENT] = f".{record.terminal_attr}(...)"
    return out


class EffectIndex:
    """Direct + transitive effect sets for every function in a graph."""

    def __init__(self, graph: ProjectGraph) -> None:
        self.graph = graph
        self.direct: dict[str, set[str]] = {}
        self.closure: dict[str, set[str]] = {}
        #: (fid, effect) → witness: either a callee fid or a leaf label.
        self.via: dict[tuple[str, str], str] = {}
        self._compute_direct()
        self._propagate()

    def _compute_direct(self) -> None:
        for fid in sorted(self.graph.functions):
            effects: set[str] = set()
            for record in self.graph.calls.get(fid, []):
                for effect, leaf in sorted(direct_effects_of_call(record).items()):
                    effects.add(effect)
                    self.via.setdefault((fid, effect), leaf)
            node = self.graph.functions[fid].node
            for sub in iter_body_nodes(node):
                targets: list[ast.AST] = []
                if isinstance(sub, ast.Assign):
                    targets = list(sub.targets)
                elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
                    targets = [sub.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        effects.add(SHARED_MUTATION)
                        self.via.setdefault(
                            (fid, SHARED_MUTATION), f"self.{target.attr} = ..."
                        )
            self.direct[fid] = effects
            self.closure[fid] = set(effects)

    def _propagate(self) -> None:
        order = sorted(self.graph.functions)
        changed = True
        while changed:
            changed = False
            for fid in order:
                mine = self.closure[fid]
                for callee in self.graph.edges.get(fid, []):
                    for effect in sorted(self.closure.get(callee, ())):
                        if effect not in mine:
                            mine.add(effect)
                            self.via[(fid, effect)] = callee
                            changed = True

    def chain(self, fid: str, effect: str) -> str:
        """Human-readable witness path from *fid* to the effect's leaf."""
        parts: list[str] = []
        current: Optional[str] = fid
        seen: set[str] = set()
        while current is not None and current not in seen:
            seen.add(current)
            info = self.graph.functions.get(current)
            parts.append(info.qualname if info is not None else current)
            witness = self.via.get((current, effect))
            if witness is None:
                break
            if witness in self.graph.functions:
                current = witness
            else:
                parts.append(witness)
                break
        return " -> ".join(parts)
