"""Shared AST plumbing for the rule modules.

Nothing here knows about specific rules: just parent links, lexical
scopes, import-alias resolution (``np.random.default_rng`` →
``numpy.random.default_rng``), and the per-file :class:`FileContext`
bundle every checker receives.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.static.engine import ProjectContext


def build_parents(tree: ast.AST) -> dict[ast.AST, ast.AST]:
    """Child → parent links for every node under *tree*."""
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def enclosing(
    node: ast.AST,
    parents: dict[ast.AST, ast.AST],
    kinds: tuple[type, ...],
) -> Optional[ast.AST]:
    """Nearest ancestor of *node* that is an instance of *kinds*."""
    current = parents.get(node)
    while current is not None:
        if isinstance(current, kinds):
            return current
        current = parents.get(current)
    return None


def enclosing_function(
    node: ast.AST, parents: dict[ast.AST, ast.AST]
) -> Optional[ast.AST]:
    return enclosing(node, parents, (ast.FunctionDef, ast.AsyncFunctionDef))


def enclosing_class(
    node: ast.AST, parents: dict[ast.AST, ast.AST]
) -> Optional[ast.ClassDef]:
    found = enclosing(node, parents, (ast.ClassDef,))
    return found if isinstance(found, ast.ClassDef) else None


class ImportMap:
    """Local name → fully qualified dotted path, from every import in a file.

    Function-local imports count too (the project imports lazily in hot
    paths), so the map is file-global rather than scope-accurate — an
    acceptable over-approximation for a linter: shadowing an imported
    module name with a local variable is its own smell.
    """

    def __init__(self) -> None:
        self._aliases: dict[str, str] = {}

    @classmethod
    def from_tree(cls, tree: ast.AST) -> "ImportMap":
        imports = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                    imports._aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level:  # relative import: resolve conservatively
                    continue
                base = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    imports._aliases[local] = f"{base}.{alias.name}" if base else alias.name
        return imports

    def alias_for(self, name: str) -> Optional[str]:
        """Dotted target a bare local *name* was imported as, if any."""
        return self._aliases.get(name)

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted path for a Name/Attribute chain rooted at an import.

        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` under ``import numpy as np``;
        returns None when the root name was never imported (e.g.
        ``self.rng.random``), so object attributes never masquerade as
        module functions.
        """
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        root = self._aliases.get(current.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))


@dataclass
class FileContext:
    """Everything a rule needs to check one file."""

    path: str
    module: str
    source: str
    tree: ast.Module
    frozen_classes: frozenset[str]  # project-wide, from the engine's pre-pass
    #: Call graph + effect index over the whole analyzed file set; None
    #: unless the selection includes an interprocedural rule.
    project: Optional["ProjectContext"] = None
    _parents: Optional[dict[ast.AST, ast.AST]] = field(default=None, repr=False)
    _imports: Optional[ImportMap] = field(default=None, repr=False)

    @property
    def parents(self) -> dict[ast.AST, ast.AST]:
        if self._parents is None:
            self._parents = build_parents(self.tree)
        return self._parents

    @property
    def imports(self) -> ImportMap:
        if self._imports is None:
            self._imports = ImportMap.from_tree(self.tree)
        return self._imports

    def walk(self) -> Iterator[ast.AST]:
        return ast.walk(self.tree)


def call_name(node: ast.Call) -> Optional[str]:
    """The bare callee name for ``foo(...)`` / terminal attr for ``a.foo(...)``."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def nested_function_names(tree: ast.AST) -> frozenset[str]:
    """Names of functions defined *inside another function* anywhere in the file.

    Used by EXP001: referencing one of these as an executor cell is a
    pickle hazard, because only module-level callables pickle by
    reference.
    """
    parents = build_parents(tree)
    names = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and (
            enclosing_function(node, parents) is not None
        ):
            names.add(node.name)
    return frozenset(names)
