"""Rendering and the ``repro lint`` entry point.

Exit codes mirror ``scripts/bench_compare.py``:

* 0 — analysis ran, no findings
* 1 — analysis ran, at least one finding
* 2 — usage error (unknown rule, missing path, bad flag)
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.analysis.static.diagnostics import RULES
from repro.analysis.static.engine import LintRun, LintUsageError, analyze_paths

#: Schema version for the JSON output; bump on breaking changes.
JSON_SCHEMA_VERSION = 1


def render_text(run: LintRun) -> str:
    """Human report: one ``path:line:col: CODE message`` line per finding."""
    lines = [diag.format() for diag in run.diagnostics]
    if run.diagnostics:
        per_rule = ", ".join(f"{code}: {n}" for code, n in run.counts.items())
        lines.append(
            f"{len(run.diagnostics)} finding(s) in {run.files_checked} file(s) ({per_rule})"
        )
    else:
        lines.append(f"clean: {run.files_checked} file(s), 0 findings")
    return "\n".join(lines)


def render_json(run: LintRun) -> str:
    """Machine report (stable key order, trailing newline)."""
    payload = {
        "schema_version": JSON_SCHEMA_VERSION,
        "files_checked": run.files_checked,
        "findings": [diag.to_json() for diag in run.diagnostics],
        "summary": run.counts,
        "rules": {
            code: {"name": rule.name, "summary": rule.summary}
            for code, rule in RULES.items()
        },
    }
    return json.dumps(payload, indent=1, sort_keys=True) + "\n"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "AST-based determinism & invariant analyzer: seeded-RNG "
            "discipline, sim-clock purity, ordered iteration, frozen "
            "configs, picklable experiment cells."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        dest="fmt",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="RULES",
        help="comma-separated rule codes to run (default: all); repeatable",
    )
    parser.add_argument(
        "--strict-noqa",
        action="store_true",
        help="also report '# repro: noqa' comments that suppress nothing",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def list_rules() -> str:
    lines = []
    for code, rule in RULES.items():
        lines.append(f"{code} ({rule.name}): {rule.summary}")
    return "\n".join(lines)


def run_lint(
    paths: Sequence[str],
    fmt: str = "text",
    select: Optional[Sequence[str]] = None,
    strict_noqa: bool = False,
) -> int:
    """Analyze *paths* and print the report; returns the exit code."""
    try:
        run = analyze_paths(paths, select=select, strict_noqa=strict_noqa)
    except LintUsageError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    if fmt == "json":
        sys.stdout.write(render_json(run))
    elif fmt == "sarif":
        from repro.analysis.static.sarif import render_sarif

        sys.stdout.write(render_sarif(run))
    else:
        print(render_text(run))
    return 0 if run.clean else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(list_rules())
        return 0
    return run_lint(
        args.paths, fmt=args.fmt, select=args.select, strict_noqa=args.strict_noqa
    )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
