"""Determinism rules DET001–DET005.

Each checker takes a :class:`~repro.analysis.static.astutils.FileContext`
and returns diagnostics; scoping (which modules a rule applies to) is
decided here via :mod:`repro.analysis.static.modulemap` so the engine
stays policy-free.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis.static.astutils import FileContext, enclosing_class
from repro.analysis.static.diagnostics import Diagnostic
from repro.analysis.static.modulemap import (
    EVENT_QUEUE_MODULE,
    SEEDED_STREAM_MODULE,
    is_hot_path,
    is_repro_library,
    is_sim_path,
)

# ----------------------------------------------------------------------
# DET001 — unseeded RNG entry points
# ----------------------------------------------------------------------

#: Qualified-name prefixes whose *calls* constitute an RNG entry point.
_RNG_PREFIXES = ("random.", "numpy.random.")


def check_det001(ctx: FileContext) -> list[Diagnostic]:
    """RNG calls outside the seeded-stream module ``repro.sim.rng``.

    All randomness must flow through :class:`repro.sim.rng.RandomStreams`
    named streams; a direct ``random.random()`` / ``np.random.normal()``
    / ``default_rng()`` call creates a stream the root seed does not
    control.
    """
    if not is_repro_library(ctx.module) or ctx.module == SEEDED_STREAM_MODULE:
        return []
    findings = []
    for node in ctx.walk():
        if not isinstance(node, ast.Call):
            continue
        qualified = ctx.imports.resolve(node.func)
        if qualified is None:
            continue
        if qualified.startswith(_RNG_PREFIXES):
            findings.append(
                Diagnostic(
                    path=ctx.path,
                    line=node.lineno,
                    col=node.col_offset,
                    code="DET001",
                    message=(
                        f"RNG call {qualified}() outside {SEEDED_STREAM_MODULE}; "
                        "draw from a named RandomStreams stream instead"
                    ),
                    module=ctx.module,
                )
            )
    return findings


# ----------------------------------------------------------------------
# DET002 — wall-clock reads in sim-path code
# ----------------------------------------------------------------------

_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


def check_det002(ctx: FileContext) -> list[Diagnostic]:
    """Wall-clock reads in sim-path modules.

    Sim-path behaviour must be a pure function of (workload, seed,
    config); ``repro.obs`` / ``repro.bench`` / ``benchmarks/`` are
    allowlisted because measuring the real world is their job.
    """
    if not is_sim_path(ctx.module):
        return []
    findings = []
    for node in ctx.walk():
        if not isinstance(node, ast.Call):
            continue
        qualified = ctx.imports.resolve(node.func)
        if qualified in _WALL_CLOCK_CALLS:
            findings.append(
                Diagnostic(
                    path=ctx.path,
                    line=node.lineno,
                    col=node.col_offset,
                    code="DET002",
                    message=(
                        f"wall-clock read {qualified}() in sim-path module "
                        f"{ctx.module}; use the sim clock (sim.now), or move "
                        "the measurement into repro.obs"
                    ),
                    module=ctx.module,
                )
            )
    return findings


# ----------------------------------------------------------------------
# DET003 — unordered iteration in hot paths
# ----------------------------------------------------------------------

_SET_RETURNING_METHODS = frozenset(
    {"intersection", "union", "difference", "symmetric_difference"}
)
_SET_ANNOTATIONS = frozenset({"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"})


class _SetBindings(ast.NodeVisitor):
    """Collects names (and ``self.<attr>`` per class) bound to sets in a file.

    Annotation-derived bindings are recorded immediately; value-derived
    ones (``survivors = eligible - stale``) are deferred and resolved to
    a fixpoint by :meth:`propagate`, so chains of set-producing
    assignments are followed.
    """

    def __init__(self) -> None:
        self.names: set[str] = set()
        self.self_attrs: dict[str, set[str]] = {}  # class name -> attrs
        self._class_stack: list[str] = []
        # (target, value expr, enclosing class name) awaiting resolution
        self._deferred: list[tuple[ast.AST, ast.AST, Optional[str]]] = []

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _record_target(self, target: ast.AST, class_name: Optional[str]) -> bool:
        if isinstance(target, ast.Name):
            if target.id in self.names:
                return False
            self.names.add(target.id)
            return True
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and class_name is not None
        ):
            attrs = self.self_attrs.setdefault(class_name, set())
            if target.attr in attrs:
                return False
            attrs.add(target.attr)
            return True
        return False

    def _current_class(self) -> Optional[str]:
        return self._class_stack[-1] if self._class_stack else None

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._deferred.append((target, node.value, self._current_class()))
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if _is_set_annotation(node.annotation):
            self._record_target(node.target, self._current_class())
        elif node.value is not None:
            self._deferred.append((node.target, node.value, self._current_class()))
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_func(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_func(node)

    def _visit_func(self, node: ast.AST) -> None:
        for arg in [*node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs]:
            if arg.annotation is not None and _is_set_annotation(arg.annotation):
                self.names.add(arg.arg)
        self.generic_visit(node)

    def propagate(self) -> None:
        """Resolve deferred value-derived bindings to a fixpoint."""
        changed = True
        while changed:
            changed = False
            for target, value, class_name in self._deferred:
                if _is_set_expr(value, self, class_name) and self._record_target(
                    target, class_name
                ):
                    changed = True


def _is_set_annotation(annotation: ast.AST) -> bool:
    """``set[...]`` / ``Set[...]`` / ``frozenset`` / ``typing.AbstractSet[...]``."""
    node = annotation
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # string annotation: crude but effective containment test
        return any(token in node.value for token in ("set[", "Set[", "frozenset", "AbstractSet"))
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr in _SET_ANNOTATIONS
    return isinstance(node, ast.Name) and node.id in _SET_ANNOTATIONS


def _is_dict_view(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("keys", "items", "values")
        and not node.args
        and not node.keywords
    )


def _is_set_expr(
    node: ast.AST,
    bindings: Optional[_SetBindings],
    current_class: Optional[str],
) -> bool:
    """Conservatively: does *node* evaluate to a set / frozenset?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return True
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SET_RETURNING_METHODS
            and _is_set_expr(node.func.value, bindings, current_class)
        ):
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)
    ):
        # set algebra; dict views under these operators also yield sets
        left_setlike = _is_set_expr(node.left, bindings, current_class) or _is_dict_view(node.left)
        right_setlike = _is_set_expr(node.right, bindings, current_class) or _is_dict_view(
            node.right
        )
        return left_setlike and right_setlike
    if bindings is None:
        return False
    if isinstance(node, ast.Name):
        return node.id in bindings.names
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and current_class is not None
    ):
        return node.attr in bindings.self_attrs.get(current_class, set())
    return False


def check_det003(ctx: FileContext) -> list[Diagnostic]:
    """Iteration over sets in sim/scheduling/market hot paths.

    Set iteration order is not part of the language contract the project
    relies on (unlike dict insertion order); in a scheduler it decides
    tie-breaks.  Wrap the iterable in ``sorted(...)`` (any deterministic
    key) to fix.
    """
    if not is_hot_path(ctx.module):
        return []
    bindings = _SetBindings()
    bindings.visit(ctx.tree)
    bindings.propagate()
    findings = []

    def flag(expr: ast.AST) -> None:
        current_class = enclosing_class(expr, ctx.parents)
        class_name = current_class.name if current_class is not None else None
        if _is_set_expr(expr, bindings, class_name):
            findings.append(
                Diagnostic(
                    path=ctx.path,
                    line=expr.lineno,
                    col=expr.col_offset,
                    code="DET003",
                    message=(
                        "iteration over a set in a hot-path module; wrap in "
                        "sorted(...) to pin the order"
                    ),
                    module=ctx.module,
                )
            )

    for node in ctx.walk():
        if isinstance(node, (ast.For, ast.AsyncFor)):
            flag(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for generator in node.generators:
                flag(generator.iter)
    return findings


# ----------------------------------------------------------------------
# DET004 — float equality on sim-time expressions
# ----------------------------------------------------------------------

#: Bare names that denote a simulated instant.
_TIME_NAMES = frozenset({"now", "sim_time", "sim_now", "t_now"})
#: Terminal attribute names that denote a simulated instant (``sim.now``,
#: ``event.time``, ``bid.expires_at``, ``task.deadline`` …).
_TIME_ATTRS = frozenset(
    {
        "now",
        "time",
        "expires_at",
        "deadline",
        "start_time",
        "finish_time",
        "end_time",
        "arrival_time",
        "release_time",
        "completion_time",
    }
)


def _is_time_expr(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return node.id in _TIME_NAMES
    if isinstance(node, ast.Attribute):
        # `self.now`, `sim.now`, `event.time` — but NOT `time.time` style
        # module attributes, which DET002 owns
        return node.attr in _TIME_ATTRS and not (
            isinstance(node.value, ast.Name) and node.value.id in ("time", "datetime")
        )
    if isinstance(node, ast.BinOp):
        return _is_time_expr(node.left) or _is_time_expr(node.right)
    return False


def check_det004(ctx: FileContext) -> list[Diagnostic]:
    """``==`` / ``!=`` between floats where one side is a sim-time expression.

    Comparisons against ``None`` are exempt (a different bug class, and
    ruff's E711 already polices the idiom).
    """
    if not is_sim_path(ctx.module):
        return []
    findings = []
    for node in ctx.walk():
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for i, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[i], operands[i + 1]
            if any(isinstance(side, ast.Constant) and side.value is None for side in (left, right)):
                continue
            if _is_time_expr(left) or _is_time_expr(right):
                findings.append(
                    Diagnostic(
                        path=ctx.path,
                        line=node.lineno,
                        col=node.col_offset,
                        code="DET004",
                        message=(
                            "exact float equality on a sim-time expression; "
                            "compare with a tolerance or restructure around "
                            "event identity"
                        ),
                        module=ctx.module,
                    )
                )
                break  # one diagnostic per comparison chain
    return findings


# ----------------------------------------------------------------------
# DET005 — raw heapq in the sim package
# ----------------------------------------------------------------------

def check_det005(ctx: FileContext) -> list[Diagnostic]:
    """Direct ``heapq`` use in ``repro.sim`` outside the EventQueue.

    ``repro.sim.queue`` owns every heap in the kernel; its head slot,
    lazy-cancellation counters, and ``pop_run`` draining are invariants
    a raw ``heappush``/``heappop`` elsewhere in the package would
    silently bypass.  Flags both calls into ``heapq.*`` (however
    imported) and the imports themselves, so a heap smuggled in via
    ``from heapq import heappush`` is caught even before first use.
    """
    module = ctx.module
    in_scope = (module == "repro.sim" or module.startswith("repro.sim.")) and (
        module != EVENT_QUEUE_MODULE
    )
    if not in_scope:
        return []
    findings = []

    def diag(node: ast.AST, what: str) -> Diagnostic:
        return Diagnostic(
            path=ctx.path,
            line=node.lineno,
            col=node.col_offset,
            code="DET005",
            message=(
                f"{what} in sim module {module}; heap state belongs to "
                f"EventQueue ({EVENT_QUEUE_MODULE}) — extend its API instead"
            ),
            module=module,
        )

    for node in ctx.walk():
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "heapq" or alias.name.startswith("heapq."):
                    findings.append(diag(node, f"import of {alias.name}"))
        elif isinstance(node, ast.ImportFrom):
            if node.module == "heapq":
                names = ", ".join(alias.name for alias in node.names)
                findings.append(diag(node, f"import from heapq ({names})"))
        elif isinstance(node, ast.Call):
            qualified = ctx.imports.resolve(node.func)
            if qualified is not None and (
                qualified == "heapq" or qualified.startswith("heapq.")
            ):
                findings.append(diag(node, f"direct call {qualified}()"))
    return findings
