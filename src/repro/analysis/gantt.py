"""ASCII gantt rendering of a recorded site timeline.

One row per node, one character per time bucket; each segment prints the
last two digits (or letter code) of its task id, idle time prints ``.``.
Intended for debugging small scenarios and for the examples — 5000-job
runs want the aggregate statistics instead.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.analysis.timeline import SiteTimeline

_GLYPHS = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"


def _glyph(tid: int) -> str:
    return _GLYPHS[tid % len(_GLYPHS)]


def render_gantt(
    timeline: SiteTimeline,
    width: int = 72,
    until: Optional[float] = None,
    legend: bool = True,
) -> str:
    """Render the timeline as text.

    Parameters
    ----------
    width:
        Characters across the time axis.
    until:
        Right edge of the axis (default: the makespan).
    legend:
        Append a task-id → glyph legend (small runs only).
    """
    span = until if until is not None else timeline.makespan
    if span <= 0:
        return "(empty timeline)"
    scale = width / span
    lines = [f"time 0 .. {span:g} ({span / width:g} per column)"]
    seen: dict[str, set[int]] = {}
    for node, row in timeline.node_rows().items():
        cells = ["."] * width
        markers = []
        for segment in row:
            lo = min(width - 1, max(0, int(math.floor(segment.start * scale))))
            hi = min(width, max(lo + 1, int(math.ceil(segment.end * scale))))
            glyph = _glyph(segment.tid)
            seen.setdefault(glyph, set()).add(segment.tid)
            for i in range(lo, hi):
                cells[i] = glyph
            if not segment.final:
                markers.append(hi - 1)
        for i in markers:  # drawn last so later segments cannot hide them
            if i < width:
                cells[i] = "~"
        lines.append(f"node {node:>2} |{''.join(cells)}|")
    if legend:
        collisions = {g: tids for g, tids in seen.items() if len(tids) > 1}
        pairs = sorted(
            (min(tids), g) for g, tids in seen.items() if len(tids) == 1
        )
        if pairs:
            lines.append(
                "legend: " + "  ".join(f"{g}=task{tid}" for tid, g in pairs)
            )
        if collisions:
            lines.append(
                "(glyphs reused for: "
                + ", ".join(f"{g}->{sorted(t)}" for g, t in sorted(collisions.items()))
                + ")"
            )
        lines.append("('~' marks a preemption; '.' is idle)")
    return "\n".join(lines)
