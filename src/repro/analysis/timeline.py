"""Execution timelines recorded from a live site.

A :class:`SiteTimeline` attaches to a
:class:`~repro.site.service.TaskServiceSite` before the run and records
one :class:`ExecutionSegment` per contiguous stretch a task spends on a
node — preempted tasks produce several segments.  From the segments it
derives the per-node occupancy (gantt rows), the queue-length time
series, and busy-node counts over time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.errors import SchedulingError

if TYPE_CHECKING:  # pragma: no cover
    from repro.site.service import TaskServiceSite
    from repro.tasks.task import Task


@dataclass(frozen=True)
class ExecutionSegment:
    """One contiguous execution of a task on one node."""

    tid: int
    node: int
    start: float
    end: float
    final: bool  # True when the segment ends in completion (not preemption)

    @property
    def length(self) -> float:
        return self.end - self.start


class SiteTimeline:
    """Observer recording the full execution history of one site run.

    Attach *before* feeding tasks::

        site = TaskServiceSite(sim, 4, FirstPrice())
        timeline = SiteTimeline(site)
        ...run...
        print(render_gantt(timeline))
    """

    def __init__(self, site: "TaskServiceSite") -> None:
        self.site = site
        self._initial_nodes = site.processors.count
        self.segments: list[ExecutionSegment] = []
        self._open: dict[int, tuple[list[int], float]] = {}  # tid -> (nodes, start)
        self.queue_samples: list[tuple[float, int]] = []
        self.busy_samples: list[tuple[float, int]] = []
        site.start_listeners.append(self._on_start)
        site.preempt_listeners.append(self._on_preempt)
        site.finish_listeners.append(self._on_finish)

    # ------------------------------------------------------------------
    def _sample(self) -> None:
        now = self.site.sim.now
        self.queue_samples.append((now, self.site.queue_length))
        self.busy_samples.append((now, self.site.running_count))

    def _on_start(self, task: "Task") -> None:
        nodes = self.site.processors.node_ids_of(task)
        self._open[task.tid] = (nodes, self.site.sim.now)
        self._sample()

    def _close_segment(self, task: "Task", final: bool) -> None:
        entry = self._open.pop(task.tid, None)
        if entry is None:
            return  # finished without running (cancelled while queued)
        nodes, start = entry
        # gang-scheduled tasks occupy several nodes: one segment per node
        for node in nodes:
            self.segments.append(
                ExecutionSegment(
                    tid=task.tid,
                    node=node,
                    start=start,
                    end=self.site.sim.now,
                    final=final,
                )
            )

    def _on_preempt(self, task: "Task") -> None:
        self._close_segment(task, final=False)
        self._sample()

    def _on_finish(self, task: "Task") -> None:
        self._close_segment(task, final=(task.state.value == "completed"))
        self._sample()

    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        """Widest node-id range the timeline has seen.

        Elastic sites grow and shrink their pool; segments key on stable
        node ids, so the gantt's row range spans every id ever observed
        (retired nodes keep their rows).
        """
        observed = max((s.node + 1 for s in self.segments), default=0)
        return max(self._initial_nodes, self.site.processors.count, observed)

    @property
    def makespan(self) -> float:
        if not self.segments:
            return 0.0
        return max(s.end for s in self.segments)

    def segments_of(self, tid: int) -> list[ExecutionSegment]:
        return sorted(
            (s for s in self.segments if s.tid == tid), key=lambda s: s.start
        )

    def node_rows(self) -> dict[int, list[ExecutionSegment]]:
        """Segments grouped by node, time-ordered — the gantt rows."""
        rows: dict[int, list[ExecutionSegment]] = {n: [] for n in range(self.node_count)}
        for segment in sorted(self.segments, key=lambda s: (s.node, s.start)):
            rows[segment.node].append(segment)
        return rows

    def verify_no_overlap(self) -> None:
        """Assert no node ever ran two segments at once (test invariant)."""
        for node, row in self.node_rows().items():
            for a, b in zip(row, row[1:]):
                if b.start < a.end - 1e-9:
                    raise SchedulingError(
                        f"node {node}: segment overlap {a} / {b}"
                    )

    def utilization(self) -> float:
        """Busy node-time over total node-time across the makespan."""
        span = self.makespan
        if span <= 0:
            return 0.0
        busy = sum(s.length for s in self.segments)
        return busy / (span * self.node_count)

    def queue_length_stats(self) -> dict:
        """Time-weighted mean and max of the queue length."""
        if len(self.queue_samples) < 2:
            return {"mean": 0.0, "max": 0}
        times = np.array([t for t, _ in self.queue_samples])
        depths = np.array([q for _, q in self.queue_samples])
        widths = np.diff(times)
        horizon = times[-1] - times[0]
        mean = float((depths[:-1] * widths).sum() / horizon) if horizon > 0 else 0.0
        return {"mean": mean, "max": int(depths.max())}

    def preemption_count(self) -> int:
        return sum(1 for s in self.segments if not s.final)
