"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """An invalid operation on the simulation kernel.

    Raised e.g. when scheduling an event in the past, cancelling an event
    that already fired, or running a simulator that has been finalized.
    """


class ProcessError(SimulationError):
    """A simulation process misbehaved (bad yield value, dead interrupt)."""


class ValueFunctionError(ReproError):
    """An ill-formed value function (non-positive runtime, negative decay)."""


class WorkloadError(ReproError):
    """An ill-formed workload specification or trace."""


class SchedulingError(ReproError):
    """An invalid scheduler configuration or state transition."""


class AdmissionError(ReproError):
    """An invalid admission-control configuration."""


class MarketError(ReproError):
    """A violation of the bidding/negotiation protocol."""


class ContractViolation(MarketError):
    """A site attempted an operation inconsistent with a signed contract."""


class ExperimentError(ReproError):
    """An invalid experiment configuration."""


class LiveServiceError(ReproError):
    """A live-mode (wall-clock service) configuration or protocol error."""
