"""repro — a reproduction of *Balancing Risk and Reward in a Market-Based
Task Service* (Irwin, Grit & Chase, HPDC 2004).

The library implements the paper's full system from scratch:

* linear-decay **value functions** with bounded/unbounded penalties
  (:mod:`repro.valuefn`),
* the **risk/reward scheduling heuristics** — FirstPrice, Present Value,
  and the α-parameterized FirstReward — plus FCFS/SRPT/SWPT baselines
  (:mod:`repro.scheduling`),
* a multiprocessor **task-service site** with preemption and slack-based
  **admission control** (:mod:`repro.site`),
* the **market layer**: sealed-bid negotiation, server bids, contracts,
  brokers, and multi-site economies (:mod:`repro.market`),
* the §4.1 **synthetic workload generator** with bimodal value/decay
  classes and load-factor calibration (:mod:`repro.workload`),
* a from-scratch **discrete-event simulation kernel**
  (:mod:`repro.sim`),
* an **experiment harness** regenerating every evaluation figure
  (:mod:`repro.experiments`, ``repro`` CLI), and
* an **observability layer**: lifecycle span trees, a metrics registry,
  scheduler profiling, and Chrome-trace export (:mod:`repro.obs`,
  ``docs/observability.md``).

Quickstart::

    from repro import (
        FirstReward, SlackAdmission, economy_spec, generate_trace,
        simulate_site,
    )

    trace = generate_trace(economy_spec(n_jobs=500, load_factor=2.0), seed=1)
    result = simulate_site(
        trace,
        FirstReward(alpha=0.3, discount_rate=0.01),
        processors=16,
        admission=SlackAdmission(threshold=180.0),
    )
    print(result.ledger.summary())
"""

# Backend selection MUST precede every other repro import: it aliases
# the canonical sim-core module names (repro.sim.kernel, …) to their
# mypyc-compiled counterparts in sys.modules when the compiled backend
# is available/requested (REPRO_BACKEND; see docs/performance.md).
from repro import _backend

_backend.init()

from repro.errors import (
    AdmissionError,
    ContractViolation,
    ExperimentError,
    MarketError,
    ProcessError,
    ReproError,
    SchedulingError,
    SimulationError,
    ValueFunctionError,
    WorkloadError,
)
from repro.market import Broker, MarketEconomy, MarketSite, run_market
from repro.obs import MetricsRegistry, Observability, observing
from repro.scheduling import (
    FCFS,
    SRPT,
    SWPT,
    FirstPrice,
    FirstReward,
    PresentValue,
    available_heuristics,
    make_heuristic,
)
from repro.sim import Simulator
from repro.site import (
    AcceptAll,
    SlackAdmission,
    TaskServiceSite,
    YieldLedger,
    simulate_site,
)
from repro.tasks import Contract, ServerBid, Task, TaskBid, TaskState
from repro.valuefn import LinearDecayValueFunction, PiecewiseLinearValueFunction
from repro.workload import (
    Trace,
    WorkloadSpec,
    economy_spec,
    generate_trace,
    millennium_spec,
)

# with the compiled backend active, expose the aliased modules as
# package attributes too (plain `repro.sim.kernel` traversal)
_backend.finalize()

__version__ = "1.0.0"

__all__ = [
    "AcceptAll",
    "AdmissionError",
    "Broker",
    "Contract",
    "ContractViolation",
    "ExperimentError",
    "FCFS",
    "FirstPrice",
    "FirstReward",
    "LinearDecayValueFunction",
    "MarketEconomy",
    "MarketError",
    "MarketSite",
    "MetricsRegistry",
    "Observability",
    "PiecewiseLinearValueFunction",
    "PresentValue",
    "ProcessError",
    "ReproError",
    "SRPT",
    "SWPT",
    "SchedulingError",
    "ServerBid",
    "SimulationError",
    "Simulator",
    "SlackAdmission",
    "Task",
    "TaskBid",
    "TaskServiceSite",
    "TaskState",
    "Trace",
    "ValueFunctionError",
    "WorkloadError",
    "WorkloadSpec",
    "YieldLedger",
    "available_heuristics",
    "economy_spec",
    "generate_trace",
    "make_heuristic",
    "millennium_spec",
    "observing",
    "run_market",
    "simulate_site",
]
