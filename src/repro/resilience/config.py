"""Configuration of the market-level resilience layer.

One frozen :class:`ResilienceConfig` is the switchboard for everything
``repro.resilience`` does: per-site health tracking, circuit breakers
around broker→site negotiation, failover re-bidding of breached or
abandoned tasks, standby-quote hedging, and quote TTLs.  Everything
defaults to *off* — a market built without a config (or with
``enabled=False``) behaves bit-identically to the resilience-free
market, which the golden regression tests pin.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import MarketError


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs of the recovery layer (all inert unless ``enabled``).

    Parameters
    ----------
    enabled:
        Master switch.  ``False`` (the default) attaches nothing: no
        listeners, no breakers, no failover — the resilience-free market
        byte for byte.
    health_alpha:
        EWMA smoothing factor for per-site health scores in (0, 1];
        higher weights the most recent outcome more.
    initial_health:
        Score a site starts with before any outcome is observed.
    breaker_failures:
        Consecutive hard failures (breaches / negotiation timeouts) that
        trip a site's breaker from CLOSED to OPEN.
    breach_rate_threshold:
        Alternative trip wire: the site's EWMA breach rate at or above
        this opens the breaker (once ``breaker_min_events`` outcomes
        have been observed).
    breaker_min_events:
        Minimum observed outcomes before the breach-rate trip wire arms
        (prevents one early breach from reading as rate 1.0).
    cooldown:
        Sim time an OPEN breaker waits before letting a HALF_OPEN probe
        through.
    half_open_probes:
        Contracts allowed in flight while HALF_OPEN; one success closes
        the breaker, one failure re-opens it.
    failover_budget:
        Re-bids allowed per task lineage after a breach, mid-task crash
        abandonment, or dried-up negotiation retry budget.  0 disables
        failover while keeping health/breakers active.
    failover_delay:
        Sim-time delay before a failover re-bid is issued (0 = the same
        instant, as a separately scheduled event).
    exclude_failed_site:
        Whether the immediate re-bid skips the site that just failed the
        task (it still participates in later rounds).
    hedge:
        When True, awards whose penalty exposure meets
        ``hedge_penalty_threshold`` also record the runner-up quote's
        site as a *standby*; failover tries the standby first.
    hedge_penalty_threshold:
        Minimum penalty exposure (the bid's bound, ``inf`` when
        unbounded) for a task to be hedged.
    quote_ttl:
        When set, sites run by the resilience driver stamp this TTL on
        their quotes (see :class:`repro.market.sites.MarketSite`).
    """

    enabled: bool = False
    # -- health ---------------------------------------------------------
    health_alpha: float = 0.2
    initial_health: float = 1.0
    # -- circuit breaker ------------------------------------------------
    breaker_failures: int = 3
    breach_rate_threshold: float = 0.5
    breaker_min_events: int = 5
    cooldown: float = 200.0
    half_open_probes: int = 1
    # -- failover re-bidding --------------------------------------------
    failover_budget: int = 2
    failover_delay: float = 0.0
    exclude_failed_site: bool = True
    # -- hedging --------------------------------------------------------
    hedge: bool = False
    hedge_penalty_threshold: float = 0.0
    # -- quoting --------------------------------------------------------
    quote_ttl: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.health_alpha <= 1.0:
            raise MarketError(
                f"health_alpha must be in (0, 1], got {self.health_alpha!r}"
            )
        if not 0.0 <= self.initial_health <= 1.0:
            raise MarketError(
                f"initial_health must be in [0, 1], got {self.initial_health!r}"
            )
        if self.breaker_failures < 1:
            raise MarketError(
                f"breaker_failures must be >= 1, got {self.breaker_failures!r}"
            )
        if not 0.0 < self.breach_rate_threshold <= 1.0:
            raise MarketError(
                "breach_rate_threshold must be in (0, 1], got "
                f"{self.breach_rate_threshold!r}"
            )
        if self.breaker_min_events < 1:
            raise MarketError(
                f"breaker_min_events must be >= 1, got {self.breaker_min_events!r}"
            )
        if not (math.isfinite(self.cooldown) and self.cooldown >= 0):
            raise MarketError(
                f"cooldown must be finite and >= 0, got {self.cooldown!r}"
            )
        if self.half_open_probes < 1:
            raise MarketError(
                f"half_open_probes must be >= 1, got {self.half_open_probes!r}"
            )
        if self.failover_budget < 0:
            raise MarketError(
                f"failover_budget must be >= 0, got {self.failover_budget!r}"
            )
        if not (math.isfinite(self.failover_delay) and self.failover_delay >= 0):
            raise MarketError(
                f"failover_delay must be finite and >= 0, got {self.failover_delay!r}"
            )
        if self.hedge_penalty_threshold < 0:
            raise MarketError(
                "hedge_penalty_threshold must be >= 0, got "
                f"{self.hedge_penalty_threshold!r}"
            )
        if self.quote_ttl is not None and not self.quote_ttl > 0:
            raise MarketError(f"quote_ttl must be > 0, got {self.quote_ttl!r}")
