"""Market-level resilience: health, circuit breakers, failover re-bidding.

The reliability subsystem (:mod:`repro.faults`) makes individual sites
fail; this package makes the *market* survive it.  Per-site health is
tracked from observed outcomes (:mod:`~repro.resilience.health`), a
circuit breaker per site gates broker→site negotiation
(:mod:`~repro.resilience.breaker`), breached or abandoned tasks fail
over to surviving sites within a bounded re-bid budget
(:mod:`~repro.resilience.manager`), and
:func:`~repro.resilience.driver.simulate_resilient_market` runs the
whole stack under injected chaos.  All of it is gated behind
:class:`~repro.resilience.config.ResilienceConfig` and bit-inert when
disabled.
"""

from repro.resilience.breaker import BreakerState, CircuitBreaker
from repro.resilience.broker import ResilientBroker
from repro.resilience.config import ResilienceConfig
from repro.resilience.driver import ResilientMarketResult, simulate_resilient_market
from repro.resilience.health import (
    HARD_FAILURES,
    OUTCOME_SCORES,
    HealthTracker,
    SiteHealth,
)
from repro.resilience.manager import Lineage, ResilienceManager, ResilienceStats

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "HARD_FAILURES",
    "HealthTracker",
    "Lineage",
    "OUTCOME_SCORES",
    "ResilienceConfig",
    "ResilienceManager",
    "ResilienceStats",
    "ResilientBroker",
    "ResilientMarketResult",
    "SiteHealth",
    "simulate_resilient_market",
]
