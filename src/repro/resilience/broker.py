"""A broker whose site list is gated by circuit breakers.

:class:`ResilientBroker` is a drop-in :class:`~repro.market.broker.Broker`
that consults a :class:`~repro.resilience.manager.ResilienceManager`
before each sealed-bid round: sites whose breaker is OPEN are not
solicited, HALF_OPEN sites admit a bounded number of probe contracts,
and every award is registered with the manager so breaches can fail
over.  Without a manager (or with resilience disabled) it negotiates
exactly like the plain broker — same counters, same selection, same
pricing — which is what keeps the layer bit-inert when off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.market.broker import Broker, NegotiationOutcome
from repro.resilience.manager import ResilienceManager
from repro.tasks.bid import TaskBid


@dataclass
class ResilientBroker(Broker):
    """Breaker-gated sealed-bid broker (see module docstring)."""

    manager: Optional[ResilienceManager] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.manager is not None:
            # failover re-bids route back through this broker
            self.manager.broker = self

    @property
    def _active(self) -> bool:
        return self.manager is not None and self.manager.config.enabled

    def negotiate(
        self, bid: TaskBid, exclude: frozenset = frozenset()
    ) -> NegotiationOutcome:
        """One sealed-bid round over the currently eligible sites.

        *exclude* names sites skipped for this round only — the failover
        path uses it to keep a re-bid away from the site that just
        failed the task.
        """
        if not self._active:
            return super().negotiate(bid)
        manager = self.manager
        assert manager is not None
        self.negotiations += 1
        eligible = manager.eligible_sites(self.sites, manager.sim.now, exclude=exclude)
        outcome = self._negotiate_over(bid, eligible)
        if outcome.accepted:
            manager.note_award(bid, outcome)
        else:
            self.rejections += 1
        return outcome
