"""Per-site health scores from observed market outcomes.

The client side of the market can only judge a site by what it sees:
contracts settled on time, settled late, breached; tasks killed by
crashes and restarted; negotiations that timed out.  Each outcome maps
to a score in [0, 1] and folds into an exponentially weighted moving
average per site — deterministic by construction (no randomness: the
score is a pure function of the outcome sequence, which is itself fixed
by the run's seed).

A separate breach-indicator EWMA feeds the circuit breaker's
breach-rate trip wire, so one number answers "how often does this site
burn a contract lately?" without a sliding-window buffer.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import MarketError

#: Outcome kinds and the health score each contributes.
OUTCOME_SCORES = {
    "completed": 1.0,  # contract settled at or before the promise
    "late": 0.6,  # settled, but past the promised completion
    "restart": 0.3,  # crash killed the task; the site is re-running it
    "timeout": 0.0,  # negotiation never completed (messages lost)
    "breach": 0.0,  # contract settled at the penalty floor
}

#: Outcomes that count as *hard* failures for the circuit breaker.
HARD_FAILURES = frozenset({"breach", "timeout"})


class SiteHealth:
    """EWMA health state for one site."""

    __slots__ = (
        "site_id",
        "score",
        "breach_rate",
        "events",
        "completions",
        "late",
        "restarts",
        "timeouts",
        "breaches",
    )

    def __init__(self, site_id: str, initial: float) -> None:
        self.site_id = site_id
        self.score = float(initial)
        self.breach_rate = 0.0
        self.events = 0
        self.completions = 0
        self.late = 0
        self.restarts = 0
        self.timeouts = 0
        self.breaches = 0

    def observe(self, outcome: str, alpha: float) -> float:
        try:
            value = OUTCOME_SCORES[outcome]
        except KeyError:
            raise MarketError(
                f"unknown health outcome {outcome!r}; options: "
                f"{sorted(OUTCOME_SCORES)}"
            ) from None
        self.events += 1
        self.score += alpha * (value - self.score)
        breach = 1.0 if outcome == "breach" else 0.0
        self.breach_rate += alpha * (breach - self.breach_rate)
        counter = {
            "completed": "completions",
            "late": "late",
            "restart": "restarts",
            "timeout": "timeouts",
            "breach": "breaches",
        }[outcome]
        setattr(self, counter, getattr(self, counter) + 1)
        return self.score

    def summary(self) -> dict:
        return {
            "score": self.score,
            "breach_rate": self.breach_rate,
            "events": self.events,
            "completions": self.completions,
            "late": self.late,
            "restarts": self.restarts,
            "timeouts": self.timeouts,
            "breaches": self.breaches,
        }

    def __repr__(self) -> str:
        return (
            f"<SiteHealth {self.site_id!r} score={self.score:.3f} "
            f"breach_rate={self.breach_rate:.3f} events={self.events}>"
        )


class HealthTracker:
    """Health scores for every site in one market."""

    def __init__(self, alpha: float = 0.2, initial: float = 1.0) -> None:
        if not 0.0 < alpha <= 1.0:
            raise MarketError(f"alpha must be in (0, 1], got {alpha!r}")
        self.alpha = float(alpha)
        self.initial = float(initial)
        self._sites: dict[str, SiteHealth] = {}

    def site(self, site_id: str) -> SiteHealth:
        health = self._sites.get(site_id)
        if health is None:
            health = SiteHealth(site_id, self.initial)
            self._sites[site_id] = health
        return health

    def observe(self, site_id: str, outcome: str) -> float:
        """Fold one outcome into *site_id*'s EWMA; returns the new score."""
        return self.site(site_id).observe(outcome, self.alpha)

    def score(self, site_id: str) -> float:
        health = self._sites.get(site_id)
        return self.initial if health is None else health.score

    def breach_rate(self, site_id: str) -> float:
        health = self._sites.get(site_id)
        return 0.0 if health is None else health.breach_rate

    def events(self, site_id: str) -> int:
        health = self._sites.get(site_id)
        return 0 if health is None else health.events

    def ranked(self, site_ids: Optional[list[str]] = None) -> list[str]:
        """Site ids ordered healthiest-first (stable for ties)."""
        ids = list(self._sites) if site_ids is None else list(site_ids)
        return sorted(ids, key=lambda s: -self.score(s))

    def snapshot(self) -> dict:
        return {sid: h.summary() for sid, h in sorted(self._sites.items())}

    def __repr__(self) -> str:
        return f"<HealthTracker alpha={self.alpha:g} sites={len(self._sites)}>"
