"""Drive a trace through a multi-site market under chaos + resilience.

:func:`simulate_resilient_market` is the resilience layer's counterpart
of :func:`repro.site.driver.simulate_site`: it builds N market sites on
one simulator, wires a :class:`~repro.resilience.broker.ResilientBroker`
and :class:`~repro.resilience.manager.ResilienceManager` over them,
optionally injects per-site node crash/repair churn (independent seeded
fault streams per site), runs the trace to drain, and returns one result
object carrying the economy outcome, the fault disruption, and the
recovery books.

With ``config.enabled=False`` the manager attaches nothing and the
broker takes the plain :class:`~repro.market.broker.Broker` path — the
chaos sweep compares exactly this pair of runs at each grid point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import MarketError
from repro.market.economy import EconomyResult, MarketEconomy
from repro.market.sites import MarketSite
from repro.resilience.broker import ResilientBroker
from repro.resilience.config import ResilienceConfig
from repro.resilience.manager import ResilienceManager
from repro.scheduling.base import SchedulingHeuristic
from repro.sim.kernel import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.faults.injector import FaultInjector
    from repro.faults.spec import FaultSpec
    from repro.faults.stats import FaultStats
    from repro.obs.instrument import Observability


@dataclass
class ResilientMarketResult:
    """Outcome of one chaos-injected market run."""

    economy: EconomyResult
    manager: ResilienceManager
    sites: list[MarketSite]
    sim: Simulator
    fault_stats: "Optional[FaultStats]" = None

    @property
    def total_revenue(self) -> float:
        return self.economy.total_revenue

    @property
    def resilience(self) -> dict:
        return self.manager.summary()

    def summary(self) -> dict:
        out = {
            **self.economy.summary(),
            "resilience": self.manager.summary(),
        }
        if self.fault_stats is not None:
            out["faults"] = self.fault_stats.summary()
        return out


def simulate_resilient_market(
    trace: Trace,
    heuristic_factory: Callable[[], SchedulingHeuristic],
    n_sites: int = 4,
    processors_per_site: int = 4,
    admission_factory: Optional[Callable[[], object]] = None,
    config: Optional[ResilienceConfig] = None,
    faults: "Optional[FaultSpec]" = None,
    fault_seed: int = 0,
    vickrey: bool = False,
    obs: "Optional[Observability]" = None,
) -> ResilientMarketResult:
    """Run *trace* across ``n_sites`` sites with chaos and recovery.

    Each site gets its own heuristic/admission instance (factories, so
    per-site mutable state is never shared), its own restart policy
    derived from *faults*, and — crucially for common random numbers —
    its own named fault streams (``"fault:<site_id>:node:<n>"``) off one
    seeded :class:`~repro.sim.rng.RandomStreams`, so resizing one site
    never perturbs another site's crash trace.

    The breach path requires bounded penalties: under ``restart=
    "abandon"`` a killed task's contract settles at the value-function
    floor, which is what triggers failover re-bidding.
    """
    if n_sites < 1:
        raise MarketError(f"n_sites must be >= 1, got {n_sites!r}")
    config = config if config is not None else ResilienceConfig()
    sim = Simulator()
    live_obs = obs if obs is not None and obs.live else None

    restart_policy = None
    if faults is not None and faults.enabled:
        from repro.faults.restart import make_restart_policy

        restart_policy = make_restart_policy(faults)

    sites = [
        MarketSite(
            sim,
            site_id=f"site-{i}",
            processors=processors_per_site,
            heuristic=heuristic_factory(),
            admission=None if admission_factory is None else admission_factory(),
            discard_expired=True,
            quote_ttl=config.quote_ttl,
            restart_policy=restart_policy,
            obs=live_obs,
        )
        for i in range(n_sites)
    ]
    manager = ResilienceManager(sim, config, sites, obs=live_obs)
    broker = ResilientBroker(sites=sites, vickrey=vickrey, manager=manager)
    economy = MarketEconomy(sim, broker)
    economy.schedule_trace(trace)

    injectors: list["FaultInjector"] = []
    stats: "Optional[FaultStats]" = None
    if faults is not None and faults.enabled:
        from repro.faults.injector import FaultInjector
        from repro.faults.stats import FaultStats

        stats = FaultStats()
        streams = RandomStreams(fault_seed)
        for site in sites:

            def on_crash_listener(task, outcome, _stats=stats):
                _stats.tasks_killed += 1
                _stats.work_lost += outcome.work_lost
                if outcome.requeued:
                    _stats.restarts += 1
                else:
                    _stats.abandoned += 1

            site.engine.crash_listeners.append(on_crash_listener)
            injectors.append(
                FaultInjector(
                    sim,
                    faults,
                    node_ids=list(range(processors_per_site)),
                    streams=streams,
                    stream_prefix=f"fault:{site.site_id}",
                    on_crash=site.engine.crash_node,
                    on_repair=site.engine.repair_node,
                    stats=stats,
                    obs=live_obs,
                )
            )

    sim.run()
    if injectors:
        # deliver shutdown interrupts to the injector loops, then run the
        # resulting events (repairs in flight, failover re-bids) to drain
        for injector in injectors:
            injector.stop()
        sim.run()
    if stats is not None:
        stats.close(sim.now)
    manager.finalize(sim.now)

    for site in sites:
        if not site.engine.all_work_done():
            raise MarketError(
                f"site {site.site_id!r} drained with work outstanding: "
                f"queue={site.engine.queue_length} running={site.engine.running_count}"
            )

    return ResilientMarketResult(
        economy=EconomyResult(outcomes=economy.outcomes, sites=sites, sim=sim),
        manager=manager,
        sites=sites,
        sim=sim,
        fault_stats=stats,
    )
