"""Per-site circuit breakers on sim time.

A breaker wraps broker→site negotiation the way a serving stack wraps a
flaky backend: CLOSED passes bids through; K consecutive hard failures
(contract breaches, negotiation timeouts) or an EWMA breach rate over
the threshold OPENs it, and the broker stops soliciting quotes from the
site; after a cooldown the next bid transitions it to HALF_OPEN and a
bounded number of probe contracts go through — one success re-CLOSEs,
one failure re-OPENs with a fresh cooldown.

Everything runs on simulated time and pure event order, so for a fixed
seed the transition log is deterministic — the regression tests pin
that.  The breaker also keeps books on how long it spent OPEN (the
"unavailability" a chaos sweep reports per site).
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.errors import MarketError
from repro.resilience.config import ResilienceConfig


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Failure-rate gate for one site's negotiation path."""

    def __init__(self, site_id: str, config: ResilienceConfig) -> None:
        self.site_id = site_id
        self.config = config
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probes_in_flight = 0
        #: cumulative sim time spent OPEN (closed out by :meth:`finalize`)
        self.open_time = 0.0
        self.opens = 0
        #: (sim time, from-state, to-state) — deterministic per seed
        self.transitions: list[tuple[float, str, str]] = []

    # ------------------------------------------------------------------
    def _move(self, to: BreakerState, now: float) -> None:
        if to is self.state:
            return
        if self.state is BreakerState.OPEN and self._opened_at is not None:
            self.open_time += now - self._opened_at
            self._opened_at = None
        self.transitions.append((now, self.state.value, to.value))
        self.state = to
        if to is BreakerState.OPEN:
            self.opens += 1
            self._opened_at = now
            self._probes_in_flight = 0
        elif to is BreakerState.HALF_OPEN:
            self._probes_in_flight = 0
        elif to is BreakerState.CLOSED:
            self.consecutive_failures = 0
            self._probes_in_flight = 0

    # ------------------------------------------------------------------
    def allow(self, now: float) -> bool:
        """Whether the broker may solicit this site for a new contract.

        An OPEN breaker whose cooldown has elapsed flips to HALF_OPEN as
        a side effect — the probing bid is the recovery mechanism.
        """
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            assert self._opened_at is not None
            if now >= self._opened_at + self.config.cooldown:
                self._move(BreakerState.HALF_OPEN, now)
                return True
            return False
        return self._probes_in_flight < self.config.half_open_probes

    def note_probe(self) -> None:
        """A HALF_OPEN solicitation was awarded; account the probe slot."""
        if self.state is BreakerState.HALF_OPEN:
            self._probes_in_flight += 1

    # ------------------------------------------------------------------
    def record_success(self, now: float) -> None:
        """A contract settled cleanly (or a probe survived)."""
        self.consecutive_failures = 0
        if self.state is BreakerState.HALF_OPEN:
            self._move(BreakerState.CLOSED, now)

    def record_failure(
        self, now: float, breach_rate: float = 0.0, events: int = 0
    ) -> None:
        """A hard failure (breach / negotiation timeout) was observed."""
        self.consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN:
            self._move(BreakerState.OPEN, now)
            return
        if self.state is not BreakerState.CLOSED:
            return
        rate_tripped = (
            events >= self.config.breaker_min_events
            and breach_rate >= self.config.breach_rate_threshold
        )
        if self.consecutive_failures >= self.config.breaker_failures or rate_tripped:
            self._move(BreakerState.OPEN, now)

    # ------------------------------------------------------------------
    def finalize(self, now: float) -> None:
        """Close the open-time books at the end of a run."""
        if self.state is BreakerState.OPEN and self._opened_at is not None:
            if now < self._opened_at:
                raise MarketError(
                    f"finalize at {now!r} precedes breaker open at {self._opened_at!r}"
                )
            self.open_time += now - self._opened_at
            self._opened_at = now

    def summary(self) -> dict:
        return {
            "state": self.state.value,
            "opens": self.opens,
            "open_time": self.open_time,
            "consecutive_failures": self.consecutive_failures,
            "transitions": len(self.transitions),
        }

    def __repr__(self) -> str:
        return (
            f"<CircuitBreaker {self.site_id!r} {self.state.value} "
            f"opens={self.opens} open_time={self.open_time:.1f}>"
        )
