"""The resilience manager: health, breakers, and failover re-bidding.

One :class:`ResilienceManager` coordinates recovery for a whole market:

* it listens to every site's settlement and crash streams and folds the
  outcomes into per-site :class:`~repro.resilience.health.HealthTracker`
  scores and :class:`~repro.resilience.breaker.CircuitBreaker` states;
* the :class:`~repro.resilience.broker.ResilientBroker` asks it which
  sites are currently eligible (breaker CLOSED, or HALF_OPEN with probe
  slots) before soliciting quotes;
* when a contract is *breached* — a crash abandoned the task, or an
  expired-task discard cancelled it — the manager re-bids the task to
  the surviving sites with its decayed remaining value, bounded by a
  per-lineage failover budget;
* a :class:`~repro.market.protocol.LatentNegotiator` whose retry budget
  runs dry reports the failure here for the same treatment; and
* optionally, high-penalty awards are *hedged*: the runner-up quote's
  site is recorded as a standby, and failover tries it first.

Conservation invariants the manager preserves (and the property tests
assert): a task lineage never runs to completion on two sites — the
original task reaches a terminal state (cancelled, settled by breach)
before any re-bid is issued — and every contract settles exactly once,
so total settled value is a sum over exactly-once settlements.

The manager is *attached* only when its config is enabled; disabled it
registers no listeners and the broker falls back to the plain
:class:`~repro.market.broker.Broker` path, keeping the layer bit-inert.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from repro.market.sites import MarketSite
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.config import ResilienceConfig
from repro.resilience.health import HealthTracker
from repro.sim.kernel import Simulator
from repro.tasks.bid import TaskBid
from repro.tasks.contract import Contract

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.market.broker import NegotiationOutcome
    from repro.market.protocol import LatentNegotiator, NegotiationRecord
    from repro.obs.instrument import Observability
    from repro.tasks.task import Task


@dataclass
class ResilienceStats:
    """Aggregate recovery counters for one market run."""

    breaches: int = 0
    negotiation_failures: int = 0
    failovers_attempted: int = 0
    failovers_contracted: int = 0
    failovers_completed: int = 0
    value_recovered: float = 0.0  # settled price of completed re-runs
    value_lost_to_breach: float = 0.0  # penalties paid on breaches
    lineages_exhausted: int = 0  # failures with no failover budget left
    hedges: int = 0
    hedge_hits: int = 0  # failovers served by the standby site

    def summary(self) -> dict:
        return {
            "breaches": self.breaches,
            "negotiation_failures": self.negotiation_failures,
            "failovers_attempted": self.failovers_attempted,
            "failovers_contracted": self.failovers_contracted,
            "failovers_completed": self.failovers_completed,
            "value_recovered": self.value_recovered,
            "value_lost_to_breach": self.value_lost_to_breach,
            "lineages_exhausted": self.lineages_exhausted,
            "hedges": self.hedges,
            "hedge_hits": self.hedge_hits,
        }


@dataclass
class Lineage:
    """Recovery history of one client task across re-bids.

    All re-bids share the root bid's value function *and release
    anchor*, so a failed-over task re-enters the market with its decayed
    remaining value — time already lost keeps counting against it.
    """

    root_bid: TaskBid
    attempts: int = 0  # failover re-bids issued
    standby: Optional[str] = None  # hedged standby site id
    contracts: list[Contract] = field(default_factory=list)
    completed: int = 0  # contracts settled by completion
    done: bool = False

    @property
    def is_failover(self) -> bool:
        return self.attempts > 0


class ResilienceManager:
    """Market-level recovery coordinator (see module docstring)."""

    def __init__(
        self,
        sim: Simulator,
        config: ResilienceConfig,
        sites: Sequence[MarketSite],
        obs: "Optional[Observability]" = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.obs = obs
        self.sites: dict[str, MarketSite] = {s.site_id: s for s in sites}
        self.health = HealthTracker(
            alpha=config.health_alpha, initial=config.initial_health
        )
        self.breakers: dict[str, CircuitBreaker] = {
            sid: CircuitBreaker(sid, config) for sid in self.sites
        }
        self.stats = ResilienceStats()
        #: broker used for failover re-bids; set by ResilientBroker
        self.broker = None
        self._lineage_of: dict[int, Lineage] = {}  # bid_id (any attempt) -> lineage
        self.lineages: list[Lineage] = []
        self._emitted_transitions: dict[str, int] = {sid: 0 for sid in self.sites}
        if config.enabled:
            for site in sites:
                site.settlement_listeners.append(self._settlement_hook(site))
                site.engine.crash_listeners.append(self._crash_hook(site))

    # ------------------------------------------------------------------
    # Breaker-gated site eligibility (asked by the ResilientBroker)
    # ------------------------------------------------------------------
    def eligible_sites(
        self, sites: Sequence[MarketSite], now: float, exclude: frozenset = frozenset()
    ) -> list[MarketSite]:
        out = []
        for site in sites:
            if site.site_id in exclude:
                continue
            breaker = self.breakers.get(site.site_id)
            if breaker is None or breaker.allow(now):
                out.append(site)
            if breaker is not None:
                self._publish_breaker(breaker)
        return out

    def _publish_breaker(self, breaker: CircuitBreaker) -> None:
        """Emit any breaker transitions not yet published to telemetry."""
        emitted = self._emitted_transitions.get(breaker.site_id, 0)
        fresh = breaker.transitions[emitted:]
        self._emitted_transitions[breaker.site_id] = len(breaker.transitions)
        if not fresh:
            return
        site = self.sites.get(breaker.site_id)
        flight = getattr(site, "flight", None)
        for when, old, new in fresh:
            if self.obs is not None:
                self.obs.breaker_transition(breaker.site_id, old, new, when)
            if flight is not None:
                flight.breaker(when, breaker.site_id, old, new)

    # ------------------------------------------------------------------
    # Lineage bookkeeping
    # ------------------------------------------------------------------
    def lineage_for(self, bid: TaskBid) -> Lineage:
        lineage = self._lineage_of.get(bid.bid_id)
        if lineage is None:
            lineage = Lineage(root_bid=bid)
            self._lineage_of[bid.bid_id] = lineage
            self.lineages.append(lineage)
        return lineage

    def note_award(self, bid: TaskBid, outcome: "NegotiationOutcome") -> None:
        """An award landed through the resilient broker."""
        assert outcome.contract is not None
        lineage = self.lineage_for(bid)
        lineage.contracts.append(outcome.contract)
        breaker = self.breakers.get(outcome.contract.site_id)
        if breaker is not None:
            breaker.note_probe()
        if (
            self.config.hedge
            and not lineage.is_failover
            and lineage.standby is None
            and self._penalty_exposure(bid) >= self.config.hedge_penalty_threshold
        ):
            standby = self._runner_up(bid, outcome)
            if standby is not None:
                lineage.standby = standby
                self.stats.hedges += 1
                if self.obs is not None:
                    self.obs.hedge_solicited()

    @staticmethod
    def _penalty_exposure(bid: TaskBid) -> float:
        """Worst-case payout the client can extract: the penalty bound."""
        return math.inf if bid.bound is None else float(bid.bound)

    def _runner_up(
        self, bid: TaskBid, outcome: "NegotiationOutcome"
    ) -> Optional[str]:
        """The standby: best quote not from the winning site."""
        assert outcome.winner is not None
        others = [q for q in outcome.quotes if q.site_id != outcome.winner.site_id]
        if not others or self.broker is None:
            return None
        index = self.broker.strategy(bid, others)
        return None if index is None else others[index].site_id

    # ------------------------------------------------------------------
    # Outcome listeners (wired per site when enabled)
    # ------------------------------------------------------------------
    def _settlement_hook(self, site: MarketSite):
        def on_settlement(contract: Contract, task: "Task") -> None:
            self._on_settlement(site.site_id, contract, task)

        return on_settlement

    def _crash_hook(self, site: MarketSite):
        def on_crash(task: "Task", outcome) -> None:
            # breaches surface through settlement; a requeued crash is a
            # soft failure that only dents health
            if outcome.requeued:
                self.health.observe(site.site_id, "restart")
                self._publish_health(site.site_id)

        return on_crash

    def _publish_health(self, site_id: str) -> None:
        if self.obs is not None:
            self.obs.site_health(site_id, self.health.score(site_id), self.sim.now)

    def _on_settlement(self, site_id: str, contract: Contract, task: "Task") -> None:
        now = self.sim.now
        breaker = self.breakers.get(site_id)
        lineage = self._lineage_of.get(contract.bid.bid_id)
        if task.state.value == "cancelled":
            if lineage is None:
                # contract formed outside the resilient broker (e.g. a
                # latent negotiation); adopt it so failover still applies
                lineage = self.lineage_for(contract.bid)
            self.stats.breaches += 1
            price = contract.actual_price if contract.actual_price is not None else 0.0
            self.stats.value_lost_to_breach += max(0.0, -price)
            self.health.observe(site_id, "breach")
            if breaker is not None:
                breaker.record_failure(
                    now,
                    breach_rate=self.health.breach_rate(site_id),
                    events=self.health.events(site_id),
                )
                self._publish_breaker(breaker)
            self._publish_health(site_id)
            self._maybe_failover(lineage, failed_site=site_id)
            return
        self.health.observe(site_id, "completed" if contract.on_time else "late")
        if breaker is not None:
            breaker.record_success(now)
            self._publish_breaker(breaker)
        self._publish_health(site_id)
        if lineage is not None:
            lineage.completed += 1
            lineage.done = True
            if contract.bid.bid_id != lineage.root_bid.bid_id:
                # a failover re-run made it to completion elsewhere
                price = contract.actual_price if contract.actual_price is not None else 0.0
                self.stats.failovers_completed += 1
                self.stats.value_recovered += max(0.0, price)
                if self.obs is not None:
                    self.obs.task_recovered(max(0.0, price), now)

    # ------------------------------------------------------------------
    # Negotiation failures (reported by LatentNegotiator)
    # ------------------------------------------------------------------
    def note_negotiation_failure(
        self, record: "NegotiationRecord", negotiator: "LatentNegotiator"
    ) -> None:
        """A latent negotiation ended without a contract.

        Sites that never answered are charged a *timeout* (health +
        breaker); a dried-up retry budget triggers a failover re-bid
        through the same negotiator, within the lineage's budget.
        """
        if not self.config.enabled or record.request is None:
            return
        self.stats.negotiation_failures += 1
        now = self.sim.now
        responded = {r.site_id for r in record.responses}
        for site in negotiator.sites:
            if site.site_id in responded:
                continue
            self.health.observe(site.site_id, "timeout")
            breaker = self.breakers.get(site.site_id)
            if breaker is not None:
                breaker.record_failure(
                    now,
                    breach_rate=self.health.breach_rate(site.site_id),
                    events=self.health.events(site.site_id),
                )
                self._publish_breaker(breaker)
            self._publish_health(site.site_id)
        if record.failure_reason != "retries-exhausted":
            return  # "no quotes" is a market verdict, not a fault
        bid = record.request.bid
        lineage = self.lineage_for(bid)
        if lineage.attempts >= self.config.failover_budget:
            self.stats.lineages_exhausted += 1
            return
        lineage.attempts += 1
        self.stats.failovers_attempted += 1
        rebid = self._rebid(lineage)
        if self.obs is not None:
            self.obs.failover_started(lineage.root_bid.bid_id, lineage.attempts, now)
        self.sim.schedule(
            self.config.failover_delay,
            self._renegotiate,
            rebid,
            negotiator,
            tag="resilience:failover",
        )

    def _renegotiate(self, rebid: TaskBid, negotiator: "LatentNegotiator") -> None:
        negotiator.negotiate(rebid)

    # ------------------------------------------------------------------
    # Failover re-bidding
    # ------------------------------------------------------------------
    def _rebid(self, lineage: Lineage) -> TaskBid:
        """A fresh bid for the lineage's task, value anchor preserved.

        The new bid keeps the root's release time: the value function
        has been decaying since the client first released the task, so
        the re-bid carries only the *remaining* value — sites quote (and
        admission-control) it accordingly.
        """
        root = lineage.root_bid
        rebid = TaskBid(
            runtime=root.runtime,
            value=root.value,
            decay=root.decay,
            bound=root.bound,
            demand=root.demand,
            client_id=root.client_id,
            released_at=root.released_at,
        )
        self._lineage_of[rebid.bid_id] = lineage
        return rebid

    def _maybe_failover(self, lineage: Optional[Lineage], failed_site: str) -> None:
        if lineage is None or lineage.done or self.broker is None:
            return
        if lineage.attempts >= self.config.failover_budget:
            self.stats.lineages_exhausted += 1
            return
        lineage.attempts += 1
        self.stats.failovers_attempted += 1
        if self.obs is not None:
            self.obs.failover_started(
                lineage.root_bid.bid_id, lineage.attempts, self.sim.now
            )
        self.sim.schedule(
            self.config.failover_delay,
            self._run_failover,
            lineage,
            failed_site,
            tag="resilience:failover",
        )

    def _run_failover(self, lineage: Lineage, failed_site: str) -> None:
        rebid = self._rebid(lineage)
        contract = None
        # hedged lineages try their standby quote first
        standby = lineage.standby
        if standby is not None and standby != failed_site:
            contract = self._award_on_standby(rebid, standby)
            if contract is not None:
                self.stats.hedge_hits += 1
        if contract is None:
            exclude = (
                frozenset({failed_site})
                if self.config.exclude_failed_site
                else frozenset()
            )
            outcome = self.broker.negotiate(rebid, exclude=exclude)
            contract = outcome.contract
        if contract is not None:
            self.stats.failovers_contracted += 1
        if self.obs is not None:
            self.obs.failover_finished(
                lineage.root_bid.bid_id,
                contract is not None,
                contract.site_id if contract is not None else None,
                self.sim.now,
            )

    def _award_on_standby(self, rebid: TaskBid, standby: str) -> Optional[Contract]:
        site = self.sites.get(standby)
        breaker = self.breakers.get(standby)
        if site is None or (breaker is not None and not breaker.allow(self.sim.now)):
            return None
        quote = site.quote(rebid)
        if quote is None:
            return None
        contract = site.award(rebid, quote)
        lineage = self._lineage_of[rebid.bid_id]
        lineage.contracts.append(contract)
        if breaker is not None:
            breaker.note_probe()
            self._publish_breaker(breaker)
        return contract

    # ------------------------------------------------------------------
    # End-of-run accounting
    # ------------------------------------------------------------------
    def finalize(self, now: float) -> dict:
        """Close breaker books; returns the full resilience summary."""
        for breaker in self.breakers.values():
            breaker.finalize(now)
            self._publish_breaker(breaker)
        return self.summary()

    @property
    def breaker_open_time(self) -> dict[str, float]:
        return {sid: b.open_time for sid, b in sorted(self.breakers.items())}

    @property
    def breaker_opens(self) -> int:
        return sum(b.opens for b in self.breakers.values())

    @property
    def double_completions(self) -> int:
        """Lineages whose task completed on more than one site.

        Must be 0 always — the conservation invariant the chaos sweep
        and the property tests assert.
        """
        return sum(1 for lineage in self.lineages if lineage.completed > 1)

    def summary(self) -> dict:
        return {
            **self.stats.summary(),
            "double_completions": self.double_completions,
            "breaker_opens": self.breaker_opens,
            "breaker_open_time": self.breaker_open_time,
            "health": self.health.snapshot(),
            "breakers": {
                sid: b.summary() for sid, b in sorted(self.breakers.items())
            },
        }

    def __repr__(self) -> str:
        return (
            f"<ResilienceManager enabled={self.config.enabled} "
            f"sites={len(self.sites)} failovers={self.stats.failovers_attempted} "
            f"recovered={self.stats.value_recovered:.1f}>"
        )
