"""Prometheus text exposition and windowed service rates.

Two small, dependency-free pieces of the live dashboard:

* :func:`prometheus_text` renders a metrics snapshot (the
  ``{name: instrument snapshot}`` mapping produced by
  :meth:`repro.obs.registry.MetricsRegistry.snapshot`) in the
  Prometheus text exposition format (version 0.0.4), so the live
  ``/metrics`` route can answer scrapers without a client library.
* :class:`RateWindow` keeps rolling windows of bid/settlement/roundtrip
  samples and derives operational rates: bids/s, acceptance %,
  revenue/s, roundtrip p50/p95.

Neither reads a clock: timestamps are supplied by the caller (the live
service passes wall seconds; tests pass literals), which keeps this
module deterministic and OBS002-clean — wall time is owned by
``repro.live`` alone.
"""

from __future__ import annotations

import math
import re
from collections import deque
from typing import Deque, Optional

#: Content type the Prometheus text format is served under.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str) -> str:
    """``tasks.completed`` → ``repro_tasks_completed`` (spec-safe)."""
    cleaned = _NAME_SANITIZE.sub("_", name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return f"repro_{cleaned}"


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def prometheus_text(
    metrics: dict[str, dict], extra_gauges: Optional[dict[str, float]] = None
) -> str:
    """Render a metrics snapshot as Prometheus exposition text.

    Counters map to ``counter``; gauges and time-weighted gauges to
    ``gauge``; histograms to ``summary`` (``_count``/``_sum`` plus mean
    as a gauge — the streaming instruments keep no quantile sketch).
    *extra_gauges* (e.g. the windowed service rates) are appended as
    plain gauges; ``None`` values are skipped.
    """
    lines: list[str] = []
    for name in sorted(metrics):
        snap = metrics[name]
        if not isinstance(snap, dict):
            continue  # tolerate non-instrument sections in a mixed snapshot
        kind = snap.get("type")
        metric = _metric_name(name)
        if kind == "counter":
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {_format_value(snap['value'])}")
        elif kind in ("gauge", "time_weighted"):
            if snap.get("writes", 0) == 0 or snap.get("value") is None:
                continue
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_format_value(snap['value'])}")
        elif kind == "histogram":
            lines.append(f"# TYPE {metric} summary")
            lines.append(f"{metric}_count {_format_value(snap.get('count', 0))}")
            lines.append(f"{metric}_sum {_format_value(snap.get('sum', 0.0))}")
            if "mean" in snap:
                mean = _metric_name(f"{name}.mean")
                lines.append(f"# TYPE {mean} gauge")
                lines.append(f"{mean} {_format_value(snap['mean'])}")
    for name in sorted(extra_gauges or {}):
        value = (extra_gauges or {})[name]
        if value is None:
            continue
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")
    return "\n".join(lines) + "\n" if lines else "\n"


def _percentile(samples: list[float], fraction: float) -> float:
    """Nearest-rank percentile over a non-empty sample list."""
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, math.ceil(fraction * len(ordered)) - 1))
    return ordered[rank]


class RateWindow:
    """Rolling windows of service events, queried for operational rates.

    Parameters
    ----------
    window:
        Width of the rate windows, in the caller's time unit (the live
        service feeds wall seconds, so 60.0 means per-minute windows).
    max_roundtrips:
        Roundtrip latency samples retained for the percentile estimates
        (count-bounded rather than time-bounded so idle services still
        report their last latencies).
    """

    def __init__(self, window: float = 60.0, max_roundtrips: int = 512) -> None:
        if window <= 0:
            raise ValueError(f"window must be > 0, got {window!r}")
        self.window = float(window)
        self._bids: Deque[tuple[float, bool]] = deque()
        self._revenue: Deque[tuple[float, float]] = deque()
        self._roundtrips: Deque[float] = deque(maxlen=max_roundtrips)

    # ------------------------------------------------------------------
    def note_bid(self, t: float, accepted: bool) -> None:
        self._bids.append((t, accepted))

    def note_settlement(self, t: float, amount: float) -> None:
        self._revenue.append((t, amount))

    def note_roundtrip(self, micros: float) -> None:
        self._roundtrips.append(micros)

    # ------------------------------------------------------------------
    def _evict(self, series: Deque, now: float) -> None:
        cutoff = now - self.window
        while series and series[0][0] < cutoff:
            series.popleft()

    def snapshot(self, now: float) -> dict:
        """Current windowed rates; ``None`` where no samples exist yet."""
        self._evict(self._bids, now)
        self._evict(self._revenue, now)
        bids = len(self._bids)
        accepted = sum(1 for _, ok in self._bids if ok)
        revenue = sum(amount for _, amount in self._revenue)
        roundtrips = list(self._roundtrips)
        return {
            "window_s": self.window,
            "bids_per_s": bids / self.window,
            "acceptance_pct": (100.0 * accepted / bids) if bids else None,
            "revenue_per_s": revenue / self.window,
            "roundtrip_p50_us": _percentile(roundtrips, 0.50) if roundtrips else None,
            "roundtrip_p95_us": _percentile(roundtrips, 0.95) if roundtrips else None,
        }
