"""Wall-clock profiling of the simulator's hot paths.

Two hooks, both keyed by a label and aggregated into
:class:`TimerStat` (count / total / min / max wall seconds):

* the scheduler ``select()`` hot path — wrap any heuristic in
  :class:`~repro.scheduling.profiled.ProfiledHeuristic` and every
  ``scores()`` call is timed under ``select:{heuristic.name}``;
* kernel event dispatch — pass the profiler to
  :class:`~repro.sim.kernel.Simulator` and every callback is timed
  under ``dispatch:{tag prefix}``.

Timers use :func:`time.perf_counter` and live entirely outside
simulated time; an attached profiler cannot change results, only
measure how fast they were produced.
"""

from __future__ import annotations

import math
import time


class TimerStat:
    """Aggregate of one timed label."""

    __slots__ = ("label", "count", "total", "min", "max")

    def __init__(self, label: str) -> None:
        self.label = label
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0

    def add(self, elapsed: float) -> None:
        self.count += 1
        self.total += elapsed
        if elapsed < self.min:
            self.min = elapsed
        if elapsed > self.max:
            self.max = elapsed

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "total_s": self.total,
            "mean_us": self.mean * 1e6,
            "min_us": (self.min if self.count else 0.0) * 1e6,
            "max_us": self.max * 1e6,
        }

    def __repr__(self) -> str:
        return f"<TimerStat {self.label} n={self.count} total={self.total:.4f}s>"


class Profiler:
    """perf_counter aggregation, one :class:`TimerStat` per label."""

    def __init__(self) -> None:
        self.stats: dict[str, TimerStat] = {}
        #: dimensionless per-call samples (e.g. rows scored per select())
        self.rows: dict[str, TimerStat] = {}

    def stat(self, label: str) -> TimerStat:
        stat = self.stats.get(label)
        if stat is None:
            stat = TimerStat(label)
            self.stats[label] = stat
        return stat

    def rows_stat(self, label: str) -> TimerStat:
        stat = self.rows.get(label)
        if stat is None:
            stat = TimerStat(label)
            self.rows[label] = stat
        return stat

    def start(self) -> float:
        """Raw timestamp for the :meth:`stop` pairing (hot-path friendly)."""
        return time.perf_counter()

    def stop(self, label: str, started: float) -> float:
        elapsed = time.perf_counter() - started
        self.stat(label).add(elapsed)
        return elapsed

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        out = {label: self.stats[label].snapshot() for label in sorted(self.stats)}
        for label in sorted(self.rows):
            stat = self.rows[label]
            out[label] = {
                "count": stat.count,
                "total": stat.total,
                "mean": stat.mean,
                "min": stat.min if stat.count else 0.0,
                "max": stat.max,
            }
        return out

    def summary_rows(self) -> list[dict]:
        """Rows for ``format_table``, slowest total first."""
        rows = []
        for label, stat in sorted(
            self.stats.items(), key=lambda kv: kv[1].total, reverse=True
        ):
            snap = stat.snapshot()
            rows.append(
                {
                    "label": label,
                    "calls": snap["count"],
                    "total_ms": snap["total_s"] * 1e3,
                    "mean_us": snap["mean_us"],
                    "max_us": snap["max_us"],
                }
            )
        for label, stat in sorted(self.rows.items()):
            rows.append(
                {
                    "label": label,
                    "calls": stat.count,
                    "mean_rows": stat.mean,
                    "max_rows": stat.max,
                }
            )
        return rows

    def __len__(self) -> int:
        return len(self.stats)

    def __repr__(self) -> str:
        return f"<Profiler {len(self.stats)} labels>"
