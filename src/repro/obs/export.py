"""Exporters: Chrome/Perfetto ``trace_event`` JSON, JSONL streams, tables.

Three consumers, three formats:

* ``chrome://tracing`` / https://ui.perfetto.dev — :func:`spans_to_chrome`
  emits the ``trace_event`` JSON object format (``{"traceEvents": [...]}``);
  closed spans become complete (``"ph": "X"``) events, instants become
  ``"ph": "i"`` marks, and each run/track pair gets thread-name metadata
  so lifecycle trees nest per task lane.  Simulated time maps to
  microseconds (1 sim time unit = 1 "µs").
* machine post-processing — :func:`spans_to_jsonl` /
  :func:`trace_to_jsonl` stream one JSON object per line, ending with a
  ``{"meta": ...}`` line that carries retention counters (``dropped``)
  so truncated exports are detectable.
* humans — :func:`metrics_summary` / :func:`profile_summary` render
  registry and profiler snapshots through the repo's plain-text tables.
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING, Iterable, Optional

from repro.metrics.tables import format_table
from repro.obs.spans import Span

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.obs.profile import Profiler
    from repro.obs.registry import MetricsRegistry
    from repro.sim.trace import SimTrace

#: Simulated time units per Chrome-trace microsecond tick.
TIME_SCALE = 1.0


def _ensure_parent(path: str) -> None:
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)


# ----------------------------------------------------------------------
# Chrome trace_event format
# ----------------------------------------------------------------------

def span_to_event(span: Span, pid: int = 0) -> dict:
    """One span as a ``trace_event`` dict (complete or instant)."""
    tid_label = span.track or (f"task:{span.task_id}" if span.task_id is not None else "run")
    event = {
        "name": span.name,
        "cat": span.category,
        "pid": pid,
        "tid": tid_label,
        "ts": span.start / TIME_SCALE,
        "args": {"span_id": span.span_id, **span.args},
    }
    if span.parent_id is not None:
        event["args"]["parent_id"] = span.parent_id
    if span.task_id is not None:
        event["args"]["task_id"] = span.task_id
    if span.is_instant:
        event["ph"] = "i"
        event["s"] = "t"  # thread-scoped instant mark
    else:
        event["ph"] = "X"
        event["dur"] = span.duration / TIME_SCALE
    return event


def spans_to_chrome(
    spans: Iterable[Span],
    run_of: Optional[dict[int, int]] = None,
    dropped: int = 0,
) -> dict:
    """All *spans* as a Chrome ``trace_event`` JSON object.

    ``run_of`` maps span ids to run (replication) indices; each run
    becomes one trace "process" so multi-replication exports stay
    navigable.  Chrome's JSON numbers ``tid`` fields, so string tracks
    are registered via ``thread_name`` metadata and numbered per run.
    """
    events: list[dict] = []
    track_ids: dict[tuple[int, str], int] = {}
    pids: set[int] = set()
    for span in spans:
        pid = run_of.get(span.span_id, 0) if run_of else 0
        event = span_to_event(span, pid=pid)
        key = (pid, event["tid"])
        if key not in track_ids:
            track_ids[key] = len(track_ids)
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": track_ids[key],
                    "args": {"name": event["tid"]},
                }
            )
        event["tid"] = track_ids[key]
        pids.add(pid)
        events.append(event)
    for pid in sorted(pids):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"run {pid}"},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"time_unit": "simulated", "spans_dropped": dropped},
    }


def write_chrome_trace(
    spans: Iterable[Span],
    path: str,
    run_of: Optional[dict[int, int]] = None,
    dropped: int = 0,
) -> None:
    _ensure_parent(path)
    with open(path, "w") as handle:
        json.dump(spans_to_chrome(spans, run_of=run_of, dropped=dropped), handle)
        handle.write("\n")


# ----------------------------------------------------------------------
# JSONL streams
# ----------------------------------------------------------------------

def spans_to_jsonl(spans: Iterable[Span], path: str, dropped: int = 0) -> int:
    """Write one JSON object per span plus a trailing meta line."""
    _ensure_parent(path)
    written = 0
    with open(path, "w") as handle:
        for span in spans:
            handle.write(json.dumps(span.to_dict(), sort_keys=True))
            handle.write("\n")
            written += 1
        handle.write(json.dumps({"meta": {"spans": written, "dropped": dropped}}))
        handle.write("\n")
    return written


def trace_to_jsonl(trace: "SimTrace", path: str) -> int:
    """Stream a :class:`SimTrace` as JSONL; payloads are stringified.

    The trailing meta line surfaces the ring buffer's ``dropped``
    counter — a truncated chronological log is detectable, never silent.
    """
    _ensure_parent(path)
    written = 0
    with open(path, "w") as handle:
        for record in trace:
            handle.write(
                json.dumps(
                    {
                        "time": record.time,
                        "kind": record.kind,
                        "tag": record.tag,
                        "payload": None if record.payload is None else str(record.payload),
                    },
                    sort_keys=True,
                )
            )
            handle.write("\n")
        written = len(trace)
        handle.write(json.dumps({"meta": {"records": written, "dropped": trace.dropped}}))
        handle.write("\n")
    return written


# ----------------------------------------------------------------------
# Human summaries
# ----------------------------------------------------------------------

def metrics_summary(registry: "MetricsRegistry", title: str = "metrics") -> str:
    rows = registry.summary_rows()
    if not rows:
        return f"{title}\n(no metrics recorded)"
    return format_table(rows, title=title)


def profile_summary(profiler: "Profiler", title: str = "profile (wall clock)") -> str:
    rows = profiler.summary_rows()
    if not rows:
        return f"{title}\n(no timings recorded)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    return format_table(rows, columns=columns, title=title)
