"""The observability facade and ambient attachment context.

One :class:`Observability` object bundles the three instruments of the
telemetry layer — the metrics registry, the lifecycle span tracker, and
the wall-clock profiler — behind the hook methods the substrate calls:
the site engine reports task transitions, the market layer reports
negotiation phases, the fault injector reports node state flips, and the
driver brackets each simulation run.

Attachment is ambient: experiment harnesses sweep dozens of
``simulate_site`` calls through code that never mentions telemetry, so
``with observing(obs): ...`` puts *obs* where
:func:`~repro.site.driver.simulate_site` finds it.  The substrate holds
``None`` by default and guards every publish with one ``is not None``
check — the disabled path costs nothing and is bit-identical by
construction (no instrument ever touches the clock, queue, or RNG).
"""

from __future__ import annotations

import contextlib
import math
from typing import TYPE_CHECKING, Iterator, Optional

from repro.obs.profile import Profiler
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.obs.spans import Span, SpanTracker

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.sim.trace import SimTrace
    from repro.site.admission import AdmissionDecision
    from repro.tasks.task import Task


class Observability:
    """Bundle of instruments plus the hook surface the substrate calls.

    Parameters
    ----------
    registry:
        A :class:`~repro.obs.registry.MetricsRegistry`, or the shared
        :data:`~repro.obs.registry.NULL_REGISTRY` (the default) for a
        no-op metrics path.
    spans:
        ``True`` (default) builds lifecycle span trees; ``False`` skips
        span bookkeeping entirely.
    profiler:
        ``True`` attaches a :class:`~repro.obs.profile.Profiler` that the
        driver wires around the scheduler hot path and kernel dispatch.
    span_capacity:
        Retention cap for finished spans (oldest dropped and counted).
    trace:
        Optional :class:`~repro.sim.trace.SimTrace` mirror so span
        open/close marks interleave with kernel events in one log.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        spans: bool = True,
        profiler: bool = False,
        span_capacity: Optional[int] = None,
        trace: "Optional[SimTrace]" = None,
    ) -> None:
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.spans = SpanTracker(capacity=span_capacity, trace=trace) if spans else None
        self.profiler = Profiler() if profiler else None
        self.trace = trace
        #: open root/segment spans per live task id (current run only)
        self._roots: dict[int, Span] = {}
        self._segments: dict[int, Span] = {}
        #: open negotiation spans by negotiation id
        self._negotiations: dict[int, Span] = {}
        #: closed negotiation spans awaiting their task root, by task id
        self._adoptable: dict[int, Span] = {}
        #: span_id -> run index, for multi-replication Chrome exports
        self.run_of: dict[int, int] = {}
        self.run_index = -1
        self.runs: list[dict] = []
        self._run_open = False

    @property
    def live(self) -> bool:
        """Whether any instrument would record anything.

        The driver hands a dead observer (null registry, spans and
        profiler off) to nobody: the substrate keeps ``obs=None`` and a
        fully disabled attachment costs exactly as much as no attachment
        — run bracketing aside, which stays so ``obs.runs`` still counts
        replications.
        """
        return self.registry.enabled or self.spans is not None or self.profiler is not None

    # ------------------------------------------------------------------
    # Run bracketing (one run == one simulate_site replication)
    # ------------------------------------------------------------------
    def begin_run(self, label: str = "") -> int:
        self.run_index += 1
        self._run_open = True
        self._roots.clear()
        self._segments.clear()
        self._negotiations.clear()
        self._adoptable.clear()
        self.registry.counter("runs.started").inc()
        if label:
            self.runs.append({"run": self.run_index, "label": label})
        else:
            self.runs.append({"run": self.run_index})
        return self.run_index

    def end_run(self, now: float, **summary) -> None:
        """Close the run: terminal-close any still-open spans, fold summary."""
        if self.spans is not None:
            for _tid, segment in list(self._segments.items()):
                self.spans.close(segment, now, truncated=True)
            for _tid, root in list(self._roots.items()):
                self.spans.close(root, now, truncated=True)
        self._roots.clear()
        self._segments.clear()
        self._negotiations.clear()
        self._adoptable.clear()
        self.registry.counter("runs.finished").inc()
        if "events" in summary:
            self.registry.counter("kernel.events").inc(summary["events"])
        if self._run_open and self.runs:
            self.runs[-1].update(summary)
        self._run_open = False

    def _mark(self, span: Span) -> Span:
        if self.run_index >= 0:
            self.run_of[span.span_id] = self.run_index
        return span

    # ------------------------------------------------------------------
    # Site lifecycle hooks
    # ------------------------------------------------------------------
    def task_submitted(self, task: "Task", now: float) -> None:
        self.registry.counter("tasks.submitted").inc()
        if self.spans is None:
            return
        root = self._mark(
            self.spans.open(
                f"task:{task.tid}",
                "task",
                now,
                task_id=task.tid,
                track=f"task:{task.tid}",
                arrival=task.arrival,
                runtime=task.runtime,
                value=task.value,
                decay=task.decay,
            )
        )
        self._roots[task.tid] = root
        # adopt the negotiation that placed this task, if one is pending
        negotiation = self._adoptable.pop(task.tid, None)
        if negotiation is not None and negotiation.parent_id is None:
            negotiation.parent_id = root.span_id
            negotiation.task_id = task.tid
        self._mark(self.spans.instant("submitted", "task", now, parent=root))

    def task_admitted(self, task: "Task", decision: "Optional[AdmissionDecision]", now: float) -> None:
        self.registry.counter("tasks.accepted").inc()
        if decision is not None:
            if math.isfinite(decision.slack):
                self.registry.histogram("admission.slack").observe(decision.slack)
            self.registry.histogram("admission.expected_yield").observe(
                decision.expected_yield
            )
        if self.spans is None:
            return
        root = self._roots.get(task.tid)
        if root is None:
            return
        args = {}
        if decision is not None:
            args = {"slack": decision.slack, "expected_start": decision.expected_start}
        self._segments[task.tid] = self._mark(
            self.spans.open("queued", "task", now, parent=root, **args)
        )

    def task_rejected(self, task: "Task", decision: "AdmissionDecision", now: float) -> None:
        self.registry.counter("tasks.rejected").inc()
        if math.isfinite(decision.slack):
            self.registry.histogram("admission.rejected_slack").observe(decision.slack)
        if self.spans is None:
            return
        root = self._roots.pop(task.tid, None)
        if root is None:
            return
        self._mark(self.spans.instant("rejected", "task", now, parent=root, slack=decision.slack))
        self.spans.close(root, now, outcome="rejected")

    def task_started(self, task: "Task", now: float) -> None:
        self.registry.counter("tasks.dispatched").inc()
        self.registry.histogram("queue.wait").observe(now - task.arrival)
        if self.spans is None:
            return
        root = self._roots.get(task.tid)
        if root is None:
            return
        segment = self._segments.pop(task.tid, None)
        if segment is not None:
            self.spans.close(segment, now)
        self._segments[task.tid] = self._mark(
            self.spans.open("running", "task", now, parent=root, remaining=task.remaining)
        )

    def task_preempted(self, task: "Task", now: float) -> None:
        self.registry.counter("tasks.preemptions").inc()
        if self.spans is None:
            self._requeue_segment(task, now, "preempted")
            return
        root = self._roots.get(task.tid)
        if root is not None:
            self._mark(
                self.spans.instant(
                    "preempted", "task", now, parent=root, preemptions=task.preemptions
                )
            )
        self._requeue_segment(task, now, "preempted")

    def task_restarted(self, task: "Task", now: float, requeued: bool) -> None:
        self.registry.counter("tasks.crashed").inc()
        if requeued:
            self.registry.counter("tasks.restarts").inc()
        if self.spans is None:
            self._requeue_segment(task, now, "crashed")
            return
        root = self._roots.get(task.tid)
        if root is not None:
            self._mark(
                self.spans.instant(
                    "crashed", "task", now, parent=root, requeued=requeued,
                    restarts=task.restarts,
                )
            )
        if requeued:
            self._requeue_segment(task, now, "crashed")

    def _requeue_segment(self, task: "Task", now: float, why: str) -> None:
        if self.spans is None:
            return
        root = self._roots.get(task.tid)
        segment = self._segments.pop(task.tid, None)
        if segment is not None:
            self.spans.close(segment, now, ended_by=why)
        if root is not None:
            self._segments[task.tid] = self._mark(
                self.spans.open("queued", "task", now, parent=root, after=why)
            )

    def _terminal(self, task: "Task", now: float, outcome: str, **args) -> None:
        if self.spans is None:
            return
        segment = self._segments.pop(task.tid, None)
        if segment is not None:
            self.spans.close(segment, now)
        root = self._roots.pop(task.tid, None)
        if root is None:
            return
        self._mark(self.spans.instant(outcome, "task", now, parent=root, **args))
        self.spans.close(root, now, outcome=outcome)

    def task_completed(self, task: "Task", now: float) -> None:
        self.registry.counter("tasks.completed").inc()
        self.registry.histogram("tasks.realized_yield").observe(task.realized_yield)
        self.registry.histogram("tasks.delay").observe(task.delay_if_completed_at(now))
        if task.preemptions:
            self.registry.histogram("tasks.preemptions_per_task").observe(task.preemptions)
        self._terminal(task, now, "completed", realized_yield=task.realized_yield)

    def task_aborted(self, task: "Task", now: float) -> None:
        """Expired-task discard (bounded penalties, value at the floor)."""
        self.registry.counter("tasks.aborted").inc()
        self._terminal(task, now, "aborted", realized_yield=task.realized_yield)

    def task_breached(self, task: "Task", now: float, penalty: float) -> None:
        """Contract breach: a crash-killed task was abandoned."""
        self.registry.counter("tasks.breached").inc()
        self.registry.histogram("tasks.breach_penalty").observe(penalty)
        self._terminal(task, now, "breached", penalty=penalty)

    def queue_depth(self, depth: int, running: int, now: float) -> None:
        self.registry.time_weighted("site.queue_depth").observe(depth, now)
        self.registry.time_weighted("site.busy_nodes").observe(running, now)

    # ------------------------------------------------------------------
    # Scheduling hooks
    # ------------------------------------------------------------------
    def survival_discount(self, factor: float) -> None:
        self.registry.histogram("scheduling.survival_discount").observe(factor)

    # ------------------------------------------------------------------
    # Market hooks
    # ------------------------------------------------------------------
    def negotiation_started(self, negotiation_id: int, now: float, task_id: Optional[int] = None) -> None:
        self.registry.counter("market.negotiations").inc()
        if self.spans is None:
            return
        span = self._mark(
            self.spans.open(
                f"negotiation:{negotiation_id}",
                "market",
                now,
                task_id=task_id,
                track=f"negotiation:{negotiation_id}",
            )
        )
        self._negotiations[negotiation_id] = span

    def negotiation_quoted(self, negotiation_id: int, site_id: str, declined: bool, now: float) -> None:
        self.registry.counter("market.quotes.declined" if declined else "market.quotes").inc()
        if self.spans is None:
            return
        span = self._negotiations.get(negotiation_id)
        if span is not None:
            self._mark(
                self.spans.instant(
                    "declined" if declined else "quoted", "market", now,
                    parent=span, site=site_id,
                )
            )

    def negotiation_finished(
        self, negotiation_id: int, now: float, contracted: bool,
        task_id: Optional[int] = None, site_id: Optional[str] = None,
    ) -> None:
        self.registry.counter(
            "market.contracted" if contracted else "market.failed"
        ).inc()
        if self.spans is None:
            return
        span = self._negotiations.pop(negotiation_id, None)
        if span is None:
            return
        if contracted and task_id is not None:
            # cross the market/site boundary: hang the negotiation under
            # the task root once the award lands (submission may follow)
            span.task_id = task_id
            root = self._roots.get(task_id)
            if root is not None:
                span.parent_id = root.span_id
            else:
                self._adoptable[task_id] = span  # adopted at task_submitted
        outcome = "contracted" if contracted else "failed"
        args = {"outcome": outcome}
        if site_id is not None:
            args["site"] = site_id
        self.spans.close(span, now, **args)

    def message_lost(self) -> None:
        self.registry.counter("market.messages_lost").inc()

    def message_retry(self) -> None:
        self.registry.counter("market.retries").inc()

    def quote_expired(self) -> None:
        """A quote's TTL lapsed in flight and the award was revalidated."""
        self.registry.counter("market.quotes.expired").inc()

    # ------------------------------------------------------------------
    # Resilience hooks
    # ------------------------------------------------------------------
    def breaker_transition(self, site_id: str, old: str, new: str, now: float) -> None:
        self.registry.counter(f"resilience.breaker.{new}").inc()
        if new == "open":
            self.registry.counter("resilience.breaker_opens").inc()
        if self.spans is not None:
            self._mark(
                self.spans.instant(
                    f"breaker:{new}", "resilience", now,
                    track=f"breaker:{site_id}", site=site_id, was=old,
                )
            )

    def site_health(self, site_id: str, score: float, now: float) -> None:
        self.registry.time_weighted(f"resilience.health.{site_id}").observe(score, now)

    def failover_started(self, root_bid_id: int, attempt: int, now: float) -> None:
        self.registry.counter("resilience.failovers").inc()
        if self.spans is not None:
            self._mark(
                self.spans.instant(
                    "failover", "resilience", now,
                    track=f"failover:{root_bid_id}", attempt=attempt,
                )
            )

    def failover_finished(
        self, root_bid_id: int, contracted: bool, site_id: Optional[str], now: float
    ) -> None:
        self.registry.counter(
            "resilience.failovers_contracted" if contracted
            else "resilience.failovers_failed"
        ).inc()
        if self.spans is not None:
            args = {"contracted": contracted}
            if site_id is not None:
                args["site"] = site_id
            self._mark(
                self.spans.instant(
                    "failover-done", "resilience", now,
                    track=f"failover:{root_bid_id}", **args,
                )
            )

    def task_recovered(self, value: float, now: float) -> None:
        """A failover re-run settled by completion: value clawed back."""
        self.registry.counter("resilience.recovered").inc()
        self.registry.histogram("resilience.recovered_value").observe(value)

    def hedge_solicited(self) -> None:
        self.registry.counter("resilience.hedges").inc()

    # ------------------------------------------------------------------
    # Fault hooks
    # ------------------------------------------------------------------
    def node_crashed(self, node_id: int, now: float, down_count: int) -> None:
        self.registry.counter("faults.crashes").inc()
        self.registry.time_weighted("faults.nodes_down").observe(down_count, now)
        if self.spans is not None:
            self._mark(
                self.spans.instant("crash", "fault", now, track=f"node:{node_id}")
            )

    def node_repaired(self, node_id: int, now: float, down_count: int) -> None:
        self.registry.counter("faults.repairs").inc()
        self.registry.time_weighted("faults.nodes_down").observe(down_count, now)
        if self.spans is not None:
            self._mark(
                self.spans.instant("repair", "fault", now, track=f"node:{node_id}")
            )

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Everything the metrics JSON export carries."""
        out: dict = {"metrics": self.registry.snapshot(), "runs": self.runs}
        if self.spans is not None:
            out["spans"] = {
                "finished": len(self.spans),
                "open": self.spans.open_count,
                "dropped": self.spans.dropped,
            }
        if self.profiler is not None:
            out["profile"] = self.profiler.snapshot()
        return out

    def __repr__(self) -> str:
        spans = len(self.spans) if self.spans is not None else "off"
        prof = len(self.profiler) if self.profiler is not None else "off"
        return (
            f"<Observability metrics={len(self.registry)} spans={spans} "
            f"profile={prof} runs={self.run_index + 1}>"
        )


def null_observability() -> Observability:
    """A fully disabled instance: null registry, no spans, no profiler.

    Attaching this must leave every result byte-identical — the golden
    regression in ``tests/faults/test_determinism.py`` pins it.
    """
    return Observability(registry=None, spans=False, profiler=False)


# ----------------------------------------------------------------------
# Ambient attachment
# ----------------------------------------------------------------------

_ACTIVE: list[Observability] = []


def current() -> Optional[Observability]:
    """The innermost ambient observability, or ``None``."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextlib.contextmanager
def observing(obs: Optional[Observability]) -> Iterator[Optional[Observability]]:
    """Make *obs* ambient for the block (``None`` is a transparent no-op)."""
    if obs is None:
        yield None
        return
    _ACTIVE.append(obs)
    try:
        yield obs
    finally:
        _ACTIVE.pop()
