"""The metrics registry: counters, gauges, and time-weighted histograms.

Every instrumented layer (kernel, site, admission, scheduling, market,
faults) publishes into one :class:`MetricsRegistry` per run.  Metrics are
pure observers — they never touch the simulation clock, the event queue,
or any RNG stream, so an attached registry cannot perturb results.

The :data:`NULL_REGISTRY` implements the same surface with no-op methods
and shared immutable instruments; disabled-mode runs pay one attribute
lookup and an empty call per publish site, keeping the null path within
the <2% overhead budget asserted by ``benchmarks/bench_obs.py``.
"""

from __future__ import annotations

import math
from typing import Optional


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value:g}>"


class Gauge:
    """A point-in-time value (last write wins); tracks its min/max."""

    __slots__ = ("name", "value", "min", "max", "writes")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.writes = 0

    def set(self, value: float) -> None:
        self.value = value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.writes += 1

    def snapshot(self) -> dict:
        if self.writes == 0:
            return {"type": "gauge", "value": None, "writes": 0}
        return {
            "type": "gauge",
            "value": self.value,
            "min": self.min,
            "max": self.max,
            "writes": self.writes,
        }

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value:g}>"


class Histogram:
    """Streaming summary of observed samples (count/sum/min/max/mean)."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        if self.count == 0:
            return {"type": "histogram", "count": 0}
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count} mean={self.mean:g}>"


class TimeWeightedGauge:
    """A gauge whose mean is weighted by how long each value was held.

    ``observe(value, now)`` closes the interval since the previous
    observation at the previous value — the right statistic for queue
    depth, busy nodes, nodes down, and similar step functions of
    simulated time.
    """

    __slots__ = ("name", "value", "min", "max", "_last_time", "_area", "_span", "writes")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._last_time: Optional[float] = None
        self._area = 0.0  # integral of value over observed time
        self._span = 0.0  # total observed time
        self.writes = 0

    def observe(self, value: float, now: float) -> None:
        if self._last_time is not None and now > self._last_time:
            dt = now - self._last_time
            self._area += self.value * dt
            self._span += dt
        self._last_time = now
        self.value = value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.writes += 1

    @property
    def time_weighted_mean(self) -> float:
        return self._area / self._span if self._span > 0 else self.value

    def snapshot(self) -> dict:
        if self.writes == 0:
            return {"type": "time_weighted", "writes": 0}
        return {
            "type": "time_weighted",
            "value": self.value,
            "min": self.min,
            "max": self.max,
            "mean": self.time_weighted_mean,
            "writes": self.writes,
        }

    def __repr__(self) -> str:
        return f"<TimeWeightedGauge {self.name}~{self.time_weighted_mean:g}>"


class MetricsRegistry:
    """Named instruments, created on first use.

    ``counter``/``gauge``/``histogram``/``time_weighted`` are get-or-create:
    the first caller fixes the instrument's type and later callers share
    it, so independent layers can publish into one metric (e.g. both the
    site and the driver bumping ``tasks.completed``).
    """

    enabled = True

    def __init__(self) -> None:
        self._instruments: dict[str, object] = {}

    def _get(self, name: str, cls):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name)
            self._instruments[name] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, requested {cls.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def time_weighted(self, name: str) -> TimeWeightedGauge:
        return self._get(name, TimeWeightedGauge)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def snapshot(self) -> dict:
        """``{name: instrument snapshot}`` for JSON export, sorted by name."""
        return {name: self._instruments[name].snapshot() for name in self.names()}

    def summary_rows(self) -> list[dict]:
        """Flat rows (one per metric) for ``repro.metrics.tables.format_table``."""
        rows = []
        for name, snap in self.snapshot().items():
            row = {"metric": name, "type": snap["type"]}
            for key in ("value", "count", "sum", "min", "max", "mean"):
                if key in snap and snap[key] is not None:
                    row[key] = snap[key]
            rows.append(row)
        return rows

    def __repr__(self) -> str:
        return f"<MetricsRegistry {len(self)} instruments>"


class _NullInstrument:
    """One shared do-nothing instrument standing in for every type."""

    __slots__ = ()
    name = "null"
    value = 0.0
    count = 0
    total = 0.0
    writes = 0
    min = math.inf
    max = -math.inf
    mean = 0.0
    time_weighted_mean = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float, now: float = 0.0) -> None:
        pass

    def snapshot(self) -> dict:
        return {"type": "null"}


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """No-op registry: same surface as :class:`MetricsRegistry`, zero state.

    Attaching this (rather than ``None``) keeps call sites branch-free
    while guaranteeing the disabled path allocates nothing per event.
    """

    enabled = False

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def time_weighted(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def __len__(self) -> int:
        return 0

    def __contains__(self, name: str) -> bool:
        return False

    def names(self) -> list[str]:
        return []

    def snapshot(self) -> dict:
        return {}

    def summary_rows(self) -> list[dict]:
        return []

    def __repr__(self) -> str:
        return "<NullRegistry>"


#: Shared null registry — the default everywhere observability is optional.
NULL_REGISTRY = NullRegistry()
