"""The market flight recorder: every economic decision, on the record.

A :class:`FlightRecorder` captures the market's decision chain — bid
arrival, per-site quote (admission verdict, slack, price), award,
settlement, quote expiry, breaker transition — as schema-versioned,
append-only JSONL.  The same record schema serves both clock domains:
simulation runs tag records with the sim clock, the live service with
its wall clock (``Recording.clock`` says which).

Like every observability layer it is off by default and bit-inert: the
recorder never reads any clock itself (callers pass ``t`` from *their*
``clock.now``, a discipline enforced statically by lint rule OBS002),
never touches sim state, and a ``flight=None`` market is byte-identical
to one that predates the recorder (pinned by the golden fig6 tests).

The JSONL layout is one header line followed by one object per event::

    {"kind": "header", "schema": 1, "clock": "sim"}
    {"seq": 1, "kind": "bid", "t": 0.0, "bid_id": 7, ...}
    {"seq": 2, "kind": "quote", "t": 0.0, "site_id": "site-0", ...}

Consumers: ``repro.audit`` (double-entry ledger checks),
``repro.replay`` (trace reconstruction + A/B policy re-runs), and
``repro.market.signals.board_from_recording`` (price-board rebuilds).
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from typing import IO, Callable, Optional

#: Bump when record fields/semantics change incompatibly.
FLIGHT_SCHEMA = 1

#: Every record kind the schema knows (audited by tests).
RECORD_KINDS = (
    "header",
    "site",
    "bid",
    "quote",
    "award",
    "settlement",
    "quote_expired",
    "breaker",
    "site_summary",
    # durability layer (live service write-ahead journal)
    "intent",
    "recovery",
    "shed",
)

#: Settlement outcomes (the three ways a contract closes).
SETTLEMENT_OUTCOMES = ("completed", "breached", "abandoned")

#: Fsync disciplines a :class:`JournalSink` supports.
FSYNC_POLICIES = ("always", "interval", "off")

#: Records between fsyncs under the ``interval`` policy.  Counted in
#: records, not seconds: this module is timestamp-passive (OBS002) and
#: may not read a clock to decide when to sync.
FSYNC_INTERVAL_RECORDS = 32


def _trim_torn_tail(path: str) -> None:
    """Drop an unterminated final line (a crashed writer's torn record)."""
    with open(path, "rb+") as handle:
        handle.seek(0, os.SEEK_END)
        size = handle.tell()
        if size == 0:
            return
        handle.seek(size - 1)
        if handle.read(1) == b"\n":
            return
        handle.seek(0)
        content = handle.read()
        cut = content.rfind(b"\n")
        handle.truncate(cut + 1 if cut >= 0 else 0)


def _jsonable(value: object) -> object:
    """JSON has no infinities; map them to sentinels the reader undoes."""
    if isinstance(value, float):
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if math.isnan(value):
            return "nan"
    return value


def _from_jsonable(value: object) -> object:
    if value == "inf":
        return math.inf
    if value == "-inf":
        return -math.inf
    if value == "nan":
        return math.nan
    return value


@dataclass
class Recording:
    """A parsed flight recording: header fields plus the event list."""

    schema: int
    clock: str
    events: list[dict] = field(default_factory=list)

    def of_kind(self, kind: str) -> list[dict]:
        """Events of one kind, in recording (seq) order."""
        return [e for e in self.events if e["kind"] == kind]

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return (
            f"<Recording schema={self.schema} clock={self.clock!r} "
            f"events={len(self.events)}>"
        )


class JournalSink:
    """A durable line sink: the flight recorder's write-ahead journal.

    Wraps a JSONL file with an explicit fsync discipline so the live
    service can treat the recording as a crash-durable journal rather
    than best-effort telemetry:

    ``always``
        ``fsync`` after every record.  A record the service acted on
        survives a power cut; one write + one sync per event.
    ``interval``
        ``fsync`` every :data:`FSYNC_INTERVAL_RECORDS` records and at
        close.  Bounded data loss (the tail of one interval) at a
        fraction of the syscall cost — the journal default.
    ``off``
        Flush to the OS on every record, never ``fsync``.  Survives a
        process crash (the kernel holds the pages) but not a power cut;
        byte-compatible with the pre-journal recorder behaviour.

    The interval is counted in *records*, never seconds: this module is
    timestamp-passive (lint rule OBS002) and may not read a clock.

    ``append=True`` reopens an existing journal without truncating it —
    the crash-recovery path, where the post-recovery records stitch onto
    the pre-crash journal in one auditable file.  ``appending`` reports
    whether prior content was found (the caller skips the header then).
    """

    def __init__(
        self,
        path: str,
        fsync: str = "interval",
        append: bool = False,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync policy must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        self.path = path
        self.fsync = fsync
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self.appending = bool(
            append and os.path.exists(path) and os.path.getsize(path) > 0
        )
        if self.appending:
            # a crashed writer can leave a torn final line; appending
            # after it would weld the next record onto the fragment and
            # corrupt the stitched journal mid-file, so trim it first
            _trim_torn_tail(path)
            self.appending = os.path.getsize(path) > 0
        self._file: Optional[IO[str]] = open(
            path, "a" if append else "w", encoding="utf-8"
        )
        self.lines = 0
        self.syncs = 0
        self._unsynced = 0
        #: when set (see :meth:`set_offload`), interval-policy fsyncs are
        #: submitted through this callable instead of blocking the caller
        self.offload: Optional[Callable[[Callable[[], None]], object]] = None

    def set_offload(self, offload: Optional[Callable[[Callable[[], None]], object]]) -> None:
        """Route *interval*-policy fsyncs through *offload* (e.g. a thread pool).

        The live service installs ``loop.run_in_executor`` here so the
        periodic durability sync never stalls the event loop.  Only the
        ``interval`` policy is offloaded: ``always`` means "the record is
        on disk before the caller proceeds", and weakening that ordering
        would change what the operator asked for; ``close`` likewise
        stays synchronous so shutdown hands back a fully-synced file.
        This module stays asyncio-free — the policy of *where* the sync
        runs belongs to the caller.
        """
        self.offload = offload

    def write_line(self, text: str) -> None:
        """Append one line; flush always, fsync per policy."""
        assert self._file is not None, "sink is closed"
        self._file.write(text)
        self._file.write("\n")
        self._file.flush()
        self.lines += 1
        self._unsynced += 1
        if self.fsync == "always":
            self._sync()
        elif self.fsync == "interval" and self._unsynced >= FSYNC_INTERVAL_RECORDS:
            if self.offload is not None:
                self._sync_offloaded()
            else:
                self._sync()

    def _sync(self) -> None:
        assert self._file is not None
        os.fsync(self._file.fileno())
        self.syncs += 1
        self._unsynced = 0

    def _sync_offloaded(self) -> None:
        """Submit the fsync elsewhere; counters advance at submission.

        The fd is captured by value: if the sink is closed before the
        pool runs the sync, ``close`` has already synced and closed that
        fd, and the stale-fd fsync degrades to a harmless ``OSError``.
        """
        assert self._file is not None
        fd = self._file.fileno()
        self.syncs += 1
        self._unsynced = 0

        def _do_sync() -> None:
            try:
                os.fsync(fd)
            except OSError:
                pass  # sink closed (and final-synced) before the pool ran

        self.offload(_do_sync)  # type: ignore[misc]

    def close(self) -> None:
        """Final sync (unless ``off``) and close; idempotent."""
        if self._file is None:
            return
        if self.fsync != "off" and self._unsynced:
            self._sync()
        self._file.close()
        self._file = None

    @property
    def closed(self) -> bool:
        return self._file is None

    def __repr__(self) -> str:
        return (
            f"<JournalSink {self.path!r} fsync={self.fsync} "
            f"lines={self.lines} syncs={self.syncs}>"
        )


class FlightRecorder:
    """Append-only recorder of market decision events.

    Parameters
    ----------
    path:
        When given, every record is streamed to this file as one JSON
        line (the directory is created; the header line is written
        immediately).  Records are always retained in memory too, so
        ``recording()`` works with or without a file.
    clock_domain:
        ``"sim"`` (simulated time) or ``"wall"`` (live service time) —
        a header-level tag; every record's ``t`` is in this domain.
    sink:
        A pre-built :class:`JournalSink` to stream through instead of
        *path* — the live service passes one to pick the fsync policy
        and to append to a recovered journal (no second header line is
        written onto an appended journal).

    The recorder is passive: it never reads a clock (callers pass
    ``t``), never raises into the decision path, and imposes only an
    append per event (the ≤5% overhead pinned by ``repro bench``).
    """

    def __init__(
        self,
        path: Optional[str] = None,
        clock_domain: str = "sim",
        sink: Optional[JournalSink] = None,
    ) -> None:
        if clock_domain not in ("sim", "wall"):
            raise ValueError(f"clock_domain must be 'sim' or 'wall', got {clock_domain!r}")
        if path is not None and sink is not None:
            raise ValueError("pass either path or sink, not both")
        self.clock_domain = clock_domain
        if sink is None and path is not None:
            # the pre-journal contract: flush per line, no fsync
            sink = JournalSink(path, fsync="off")
        self.sink = sink
        self.path = sink.path if sink is not None else None
        self.events: list[dict] = []
        self.seq = 0
        if sink is not None and not sink.appending:
            self._write_line(
                {"kind": "header", "schema": FLIGHT_SCHEMA, "clock": clock_domain}
            )

    # ------------------------------------------------------------------
    # Core
    # ------------------------------------------------------------------
    def record(self, kind: str, t: float, **fields: object) -> dict:
        """Append one event; returns the stored record."""
        self.seq += 1
        row: dict = {"seq": self.seq, "kind": kind, "t": float(t)}
        row.update(fields)
        self.events.append(row)
        if self.sink is not None and not self.sink.closed:
            self._write_line(row)
        return row

    def _write_line(self, row: dict) -> None:
        assert self.sink is not None
        self.sink.write_line(json.dumps({k: _jsonable(v) for k, v in row.items()}))

    def close(self) -> None:
        """Flush and close the file sink (idempotent)."""
        if self.sink is not None:
            self.sink.close()

    def __enter__(self) -> "FlightRecorder":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def recording(self) -> Recording:
        """The in-memory events as a :class:`Recording`."""
        return Recording(
            schema=FLIGHT_SCHEMA, clock=self.clock_domain, events=list(self.events)
        )

    # ------------------------------------------------------------------
    # Typed emitters (callers pass t from their own clock.now)
    # ------------------------------------------------------------------
    def site_open(
        self,
        t: float,
        site_id: str,
        capacity: int,
        heuristic: str,
        threshold: Optional[float] = None,
        discount_rate: Optional[float] = None,
    ) -> None:
        """A site joined the recorded market (capacity + policy knobs)."""
        self.record(
            "site",
            t,
            site_id=site_id,
            capacity=int(capacity),
            heuristic=heuristic,
            threshold=threshold,
            discount_rate=discount_rate,
        )

    def bid(self, t: float, bid) -> None:
        """A client bid arrived for negotiation."""
        self.record(
            "bid",
            t,
            bid_id=bid.bid_id,
            client_id=bid.client_id,
            runtime=bid.runtime,
            value=bid.value,
            decay=bid.decay,
            bound=bid.bound,
            demand=bid.demand,
            released_at=bid.released_at,
        )

    def quote(self, t: float, site_id: str, bid, decision, server_bid) -> None:
        """One site's answer: an issued quote or an admission decline."""
        row: dict = {
            "site_id": site_id,
            "bid_id": bid.bid_id,
            "verdict": "issued" if server_bid is not None else "declined",
            "slack": decision.slack,
            "expected_completion": decision.expected_completion,
            "expected_yield": decision.expected_yield,
        }
        if server_bid is not None:
            row["price"] = server_bid.expected_price
            row["expires_at"] = server_bid.expires_at
        self.record("quote", t, **row)

    def award(self, t: float, bid, winner, contract) -> None:
        """The broker awarded *bid* to *winner*'s site; a contract formed."""
        self.record(
            "award",
            t,
            bid_id=bid.bid_id,
            site_id=winner.site_id,
            contract_id=contract.contract_id,
            agreed_price=contract.agreed_price,
            promised_completion=contract.promised_completion,
            task_tid=contract.task_tid,
        )

    def settlement(self, t: float, contract, outcome: str) -> None:
        """A contract settled (exactly once): payment, penalty, or refund."""
        self.record(
            "settlement",
            t,
            contract_id=contract.contract_id,
            bid_id=contract.bid.bid_id,
            site_id=contract.site_id,
            outcome=outcome,
            price=contract.actual_price,
            agreed_price=contract.agreed_price,
            completion=contract.actual_completion,
            on_time=contract.on_time,
            runtime=contract.bid.runtime,
            value=contract.bid.value,
        )

    def quote_expired(self, t: float, site_id: str, server_bid) -> None:
        """An award arrived after the quote's TTL; the site refused it."""
        self.record(
            "quote_expired",
            t,
            site_id=site_id,
            bid_id=server_bid.bid_id,
            expires_at=server_bid.expires_at,
        )

    def breaker(self, t: float, site_id: str, old: str, new: str) -> None:
        """A resilience circuit breaker changed state."""
        self.record("breaker", t, site_id=site_id, old=old, new=new)

    def intent(self, t: float, action: str, **fields: object) -> None:
        """A durability intent, journaled *before* the service acts.

        The live service's write-ahead discipline: ``accept`` before a
        bid is negotiated, ``response`` (with the idempotency key and
        the exact response document) before the reply leaves the
        socket, ``spawn`` (with the child PID) as a subprocess starts.
        Recovery replays these to rebuild the dedup table and to find
        orphaned children.
        """
        self.record("intent", t, action=action, **fields)

    def recovery(self, t: float, action: str, **fields: object) -> None:
        """A crash-recovery step: ``begin``, ``kill``, ``resettle``, ``resume``."""
        self.record("recovery", t, action=action, **fields)

    def shed(
        self,
        t: float,
        queued: int,
        watermark: int,
        retry_after_s: float,
        client_id: Optional[str] = None,
    ) -> None:
        """Intake refused a bid at the queue-depth watermark (HTTP 429)."""
        self.record(
            "shed",
            t,
            queued=int(queued),
            watermark=int(watermark),
            retry_after_s=float(retry_after_s),
            client_id=client_id,
        )

    def site_summary(
        self,
        t: float,
        site_id: str,
        revenue: float,
        contracts: int,
        quotes_issued: int,
        quotes_declined: int,
    ) -> None:
        """A site's closing books — the audit's reconciliation anchor."""
        self.record(
            "site_summary",
            t,
            site_id=site_id,
            revenue=float(revenue),
            contracts=int(contracts),
            quotes_issued=int(quotes_issued),
            quotes_declined=int(quotes_declined),
        )

    def __repr__(self) -> str:
        sink = self.path if self.path is not None else "memory"
        return f"<FlightRecorder {self.clock_domain} events={self.seq} sink={sink}>"


# ----------------------------------------------------------------------
# Reader
# ----------------------------------------------------------------------

def read_recording(path: str) -> Recording:
    """Parse a JSONL flight recording written by :class:`FlightRecorder`.

    Raises :class:`ValueError` on a missing/garbled header or a schema
    the reader does not understand; malformed trailing lines (a crashed
    writer's torn final record) are tolerated and dropped.
    """
    with open(path, encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    if not lines:
        raise ValueError(f"{path}: empty recording (no header line)")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: unreadable header line: {exc}") from exc
    if not isinstance(header, dict) or header.get("kind") != "header":
        raise ValueError(f"{path}: first line is not a flight-recorder header")
    schema = header.get("schema")
    if schema != FLIGHT_SCHEMA:
        raise ValueError(
            f"{path}: recording schema {schema!r} != supported {FLIGHT_SCHEMA}"
        )
    clock = header.get("clock")
    if clock not in ("sim", "wall"):
        raise ValueError(f"{path}: bad clock domain {clock!r}")
    events: list[dict] = []
    for index, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            raw = json.loads(line)
        except json.JSONDecodeError:
            if index == len(lines):
                break  # torn final line from an interrupted writer
            raise ValueError(f"{path}:{index}: unreadable record") from None
        events.append({k: _from_jsonable(v) for k, v in raw.items()})
    return Recording(schema=schema, clock=clock, events=events)
