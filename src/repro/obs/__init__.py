"""End-to-end observability: spans, metrics, profiling, and exporters.

The telemetry layer (DESIGN.md S27) answers *why* a run produced its
numbers — which tasks were admitted, preempted, crashed, or allowed to
decay — without perturbing the run:

* **Causal spans** (:mod:`repro.obs.spans`): every task gets a lifecycle
  span tree (submitted → queued → running ⇄ preempted/crashed →
  completed | aborted | breached) with parent links across the
  market/site boundary, mirrored into the kernel's ``SimTrace``.
* **Metrics registry** (:mod:`repro.obs.registry`): counters, gauges,
  histograms, and time-weighted gauges published by the kernel, site,
  admission, scheduling, market, and fault layers; a shared null
  registry keeps the disabled path free and bit-inert.
* **Profiling hooks** (:mod:`repro.obs.profile`): ``perf_counter``
  timers around the scheduler ``select()`` hot path (per heuristic) and
  kernel event dispatch (per tag family).
* **Exporters** (:mod:`repro.obs.export`): Chrome/Perfetto
  ``trace_event`` JSON, JSONL streams with explicit drop counters, and
  human summary tables.
* **Flight recorder** (:mod:`repro.obs.flight`): schema-versioned
  append-only JSONL log of every market decision (bid, quote, award,
  settlement, breaker transition) for ``repro audit`` / ``repro replay``.
* **Prometheus exposition** (:mod:`repro.obs.prom`): text-format
  rendering of metrics snapshots plus windowed service rates for the
  live ``/metrics`` route.

Attach with the ambient context::

    from repro.obs import Observability, observing

    obs = Observability(registry=MetricsRegistry(), profiler=True)
    with observing(obs):
        run_experiment("fig3", scale="quick")
    print(metrics_summary(obs.registry))
"""

from repro.obs.export import (
    metrics_summary,
    profile_summary,
    spans_to_chrome,
    spans_to_jsonl,
    trace_to_jsonl,
    write_chrome_trace,
)
from repro.obs.flight import (
    FLIGHT_SCHEMA,
    FlightRecorder,
    JournalSink,
    Recording,
    read_recording,
)
from repro.obs.instrument import Observability, current, null_observability, observing
from repro.obs.prom import PROMETHEUS_CONTENT_TYPE, RateWindow, prometheus_text
from repro.obs.profile import Profiler, TimerStat
from repro.obs.registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    TimeWeightedGauge,
)
from repro.obs.spans import Span, SpanTracker

__all__ = [
    "FLIGHT_SCHEMA",
    "NULL_REGISTRY",
    "PROMETHEUS_CONTENT_TYPE",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "JournalSink",
    "MetricsRegistry",
    "NullRegistry",
    "Observability",
    "Profiler",
    "RateWindow",
    "Recording",
    "Span",
    "SpanTracker",
    "TimeWeightedGauge",
    "TimerStat",
    "current",
    "metrics_summary",
    "null_observability",
    "observing",
    "profile_summary",
    "prometheus_text",
    "read_recording",
    "spans_to_chrome",
    "spans_to_jsonl",
    "trace_to_jsonl",
    "write_chrome_trace",
]
