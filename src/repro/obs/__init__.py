"""End-to-end observability: spans, metrics, profiling, and exporters.

The telemetry layer (DESIGN.md S27) answers *why* a run produced its
numbers — which tasks were admitted, preempted, crashed, or allowed to
decay — without perturbing the run:

* **Causal spans** (:mod:`repro.obs.spans`): every task gets a lifecycle
  span tree (submitted → queued → running ⇄ preempted/crashed →
  completed | aborted | breached) with parent links across the
  market/site boundary, mirrored into the kernel's ``SimTrace``.
* **Metrics registry** (:mod:`repro.obs.registry`): counters, gauges,
  histograms, and time-weighted gauges published by the kernel, site,
  admission, scheduling, market, and fault layers; a shared null
  registry keeps the disabled path free and bit-inert.
* **Profiling hooks** (:mod:`repro.obs.profile`): ``perf_counter``
  timers around the scheduler ``select()`` hot path (per heuristic) and
  kernel event dispatch (per tag family).
* **Exporters** (:mod:`repro.obs.export`): Chrome/Perfetto
  ``trace_event`` JSON, JSONL streams with explicit drop counters, and
  human summary tables.

Attach with the ambient context::

    from repro.obs import Observability, observing

    obs = Observability(registry=MetricsRegistry(), profiler=True)
    with observing(obs):
        run_experiment("fig3", scale="quick")
    print(metrics_summary(obs.registry))
"""

from repro.obs.export import (
    metrics_summary,
    profile_summary,
    spans_to_chrome,
    spans_to_jsonl,
    trace_to_jsonl,
    write_chrome_trace,
)
from repro.obs.instrument import Observability, current, null_observability, observing
from repro.obs.profile import Profiler, TimerStat
from repro.obs.registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    TimeWeightedGauge,
)
from repro.obs.spans import Span, SpanTracker

__all__ = [
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "Observability",
    "Profiler",
    "Span",
    "SpanTracker",
    "TimeWeightedGauge",
    "TimerStat",
    "current",
    "metrics_summary",
    "null_observability",
    "observing",
    "profile_summary",
    "spans_to_chrome",
    "spans_to_jsonl",
    "trace_to_jsonl",
    "write_chrome_trace",
]
