"""Causal lifecycle spans.

A :class:`Span` is a named interval of simulated time with a parent
link; instants (zero-duration marks such as a preemption or a node
crash) share the same record with ``end == start``.  The
:class:`SpanTracker` hands out ids, keeps the finished-span list under a
capacity bound (counting drops, like :class:`~repro.sim.trace.SimTrace`),
and mirrors every open/close/instant into an attached ``SimTrace`` so
the chronological kernel log stays the one authoritative record of a run.

The task lifecycle tree built by :class:`~repro.obs.instrument.Observability`:

    task:<tid>                      root, submission -> terminal state
    ├─ negotiation:<id>             (market runs only) request -> contract
    ├─ queued                       accept -> dispatch, one per wait
    ├─ running                      dispatch -> completion/preemption/crash
    │   └─ preempted / crashed      instant, closes the running span
    └─ completed|aborted|breached   instant, closes the root

Parent/child links cross the market/site boundary: the negotiation span
that produced a contract is recorded as a child of the task's root span,
so one tree explains *why* a task ran where and when it did.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.sim.trace import SimTrace


@dataclass
class Span:
    """One interval (or instant, when ``end == start``) of a lifecycle."""

    span_id: int
    name: str
    category: str
    start: float
    end: Optional[float] = None
    parent_id: Optional[int] = None
    task_id: Optional[int] = None
    track: Optional[str] = None  # display lane (chrome "tid"): task/node/negotiation
    args: dict = field(default_factory=dict)

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def is_instant(self) -> bool:
        return self.end == self.start

    def to_dict(self) -> dict:
        out = {
            "span_id": self.span_id,
            "name": self.name,
            "category": self.category,
            "start": self.start,
            "end": self.end,
        }
        if self.parent_id is not None:
            out["parent_id"] = self.parent_id
        if self.task_id is not None:
            out["task_id"] = self.task_id
        if self.track is not None:
            out["track"] = self.track
        if self.args:
            out["args"] = self.args
        return out

    def __repr__(self) -> str:
        end = f"{self.end:g}" if self.end is not None else "open"
        return f"<Span #{self.span_id} {self.category}:{self.name} [{self.start:g}, {end}]>"


class SpanTracker:
    """Creates, closes, and retains spans for one observed run set.

    Parameters
    ----------
    capacity:
        Optional cap on *finished* spans retained; the oldest are dropped
        first and counted in :attr:`dropped` (mirrors ``SimTrace``).
    trace:
        Optional :class:`~repro.sim.trace.SimTrace` that receives a
        ``span`` record for every open/close/instant, keeping the
        kernel's chronological log authoritative.
    """

    def __init__(self, capacity: Optional[int] = None, trace: "Optional[SimTrace]" = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive or None")
        self._ids = itertools.count()
        self._capacity = capacity
        self.trace = trace
        self.finished: list[Span] = []
        self.open_count = 0
        self.dropped = 0

    # ------------------------------------------------------------------
    def open(
        self,
        name: str,
        category: str,
        start: float,
        parent: Optional[Span] = None,
        task_id: Optional[int] = None,
        track: Optional[str] = None,
        **args,
    ) -> Span:
        span = Span(
            span_id=next(self._ids),
            name=name,
            category=category,
            start=start,
            parent_id=parent.span_id if parent is not None else None,
            task_id=task_id if task_id is not None else (parent.task_id if parent else None),
            track=track if track is not None else (parent.track if parent else None),
            args=args,
        )
        self.open_count += 1
        if self.trace is not None:
            self.trace.record(start, "span", f"open:{category}:{name}", span.span_id)
        return span

    def close(self, span: Span, end: float, **args) -> Span:
        if span.closed:
            raise ValueError(f"span #{span.span_id} ({span.name}) is already closed")
        if end < span.start:
            raise ValueError(
                f"span #{span.span_id} cannot close at {end!r} before its start {span.start!r}"
            )
        span.end = end
        if args:
            span.args.update(args)
        self.open_count -= 1
        self._retain(span)
        if self.trace is not None:
            self.trace.record(end, "span", f"close:{span.category}:{span.name}", span.span_id)
        return span

    def instant(
        self,
        name: str,
        category: str,
        ts: float,
        parent: Optional[Span] = None,
        task_id: Optional[int] = None,
        track: Optional[str] = None,
        **args,
    ) -> Span:
        span = self.open(name, category, ts, parent=parent, task_id=task_id, track=track, **args)
        span.end = ts
        self.open_count -= 1
        self._retain(span)
        if self.trace is not None:
            self.trace.record(ts, "span", f"instant:{category}:{name}", span.span_id)
        return span

    def _retain(self, span: Span) -> None:
        self.finished.append(span)
        if self._capacity is not None and len(self.finished) > self._capacity:
            overflow = len(self.finished) - self._capacity
            del self.finished[:overflow]
            self.dropped += overflow

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.finished)

    def of_name(self, name: str) -> list[Span]:
        return [s for s in self.finished if s.name == name]

    def of_category(self, category: str) -> list[Span]:
        return [s for s in self.finished if s.category == category]

    def children_of(self, span: Span) -> list[Span]:
        return [s for s in self.finished if s.parent_id == span.span_id]

    def tree(self, root: Span) -> list[Span]:
        """*root* plus every finished descendant, in span-id order."""
        by_parent: dict[Optional[int], list[Span]] = {}
        for s in self.finished:
            by_parent.setdefault(s.parent_id, []).append(s)
        out: list[Span] = []
        stack = [root]
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(by_parent.get(node.span_id, []))
        return sorted(out, key=lambda s: s.span_id)

    def __repr__(self) -> str:
        return (
            f"<SpanTracker finished={len(self.finished)} open={self.open_count} "
            f"dropped={self.dropped}>"
        )
