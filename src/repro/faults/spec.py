"""Fault-model configuration.

A :class:`FaultSpec` is the single switchboard for the reliability
subsystem: per-node crash/repair cycles (MTTF/MTTR and their
distributions), the restart policy applied to tasks killed by a crash,
and the failure-aware pricing knobs (survival discount, slack
inflation).  Everything defaults to *off* — a site built without a
FaultSpec (or with ``enabled=False``) behaves bit-identically to the
fault-free engine.

Crash and repair times are drawn by inverse-transform sampling on the
seeded per-node RNG streams, so two runs that differ only in MTTF
consume the *same* uniform draws scaled differently — shrinking MTTF
strictly advances every crash, which keeps MTTF sweeps well-coupled
(common random numbers) and their yield curves clean.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import SimulationError

#: Restart policy names accepted by :func:`repro.faults.restart.make_restart_policy`.
RESTART_POLICIES = ("requeue", "checkpoint", "abandon")

#: Time-to-failure / time-to-repair distribution families.
FAULT_DISTRIBUTIONS = ("exponential", "weibull")


@dataclass(frozen=True)
class FaultSpec:
    """Configuration of the fault-injection subsystem.

    Parameters
    ----------
    mttf:
        Mean time to failure per node (time units of the simulation).
        ``math.inf`` disables crashes while keeping the wiring active.
    mttr:
        Mean time to repair per node.
    enabled:
        Master switch; ``False`` is exactly the fault-free engine.
    ttf_distribution / ttr_distribution:
        ``"exponential"`` (memoryless, the classic availability model) or
        ``"weibull"`` (shape ``weibull_shape``; >1 models wear-out).
    weibull_shape:
        Shape parameter used when either distribution is Weibull.
    restart:
        What happens to a task killed by a node crash — one of
        ``"requeue"`` (from scratch: all progress lost),
        ``"checkpoint"`` (progress up to the last checkpoint survives,
        plus ``checkpoint_overhead`` to reload), or ``"abandon"``
        (breach the contract and pay the value-function floor; falls
        back to requeue for unbounded-penalty tasks, which cannot
        legally be breached).
    checkpoint_overhead:
        Extra work (time units) added on resume under ``"checkpoint"``.
    checkpoint_interval:
        Checkpoint cadence; progress since the last multiple of this
        interval is lost on a crash.  ``None`` checkpoints continuously
        (only the overhead is paid).
    survival_discount:
        When True, the driver wraps the site heuristic in
        :class:`repro.scheduling.survival.SurvivalDiscount` so candidate
        scores are multiplied by P(node survives the task's RPT).
    slack_inflation:
        Per-RPT-unit inflation of the admission slack requirement
        (see :class:`repro.site.admission.SlackAdmission`); 0 is off.
    """

    mttf: float
    mttr: float
    enabled: bool = True
    ttf_distribution: str = "exponential"
    ttr_distribution: str = "exponential"
    weibull_shape: float = 1.5
    restart: str = "requeue"
    checkpoint_overhead: float = 0.0
    checkpoint_interval: Optional[float] = None
    survival_discount: bool = False
    slack_inflation: float = 0.0

    def __post_init__(self) -> None:
        if not self.mttf > 0 or math.isnan(self.mttf):
            raise SimulationError(f"mttf must be > 0, got {self.mttf!r}")
        if not (math.isfinite(self.mttr) and self.mttr >= 0):
            raise SimulationError(f"mttr must be finite and >= 0, got {self.mttr!r}")
        for kind in (self.ttf_distribution, self.ttr_distribution):
            if kind not in FAULT_DISTRIBUTIONS:
                raise SimulationError(
                    f"unknown fault distribution {kind!r}; options: {FAULT_DISTRIBUTIONS}"
                )
        if not self.weibull_shape > 0:
            raise SimulationError(
                f"weibull_shape must be > 0, got {self.weibull_shape!r}"
            )
        if self.restart not in RESTART_POLICIES:
            raise SimulationError(
                f"unknown restart policy {self.restart!r}; options: {RESTART_POLICIES}"
            )
        if self.checkpoint_overhead < 0:
            raise SimulationError(
                f"checkpoint_overhead must be >= 0, got {self.checkpoint_overhead!r}"
            )
        if self.checkpoint_interval is not None and not self.checkpoint_interval > 0:
            raise SimulationError(
                f"checkpoint_interval must be > 0, got {self.checkpoint_interval!r}"
            )
        if self.slack_inflation < 0:
            raise SimulationError(
                f"slack_inflation must be >= 0, got {self.slack_inflation!r}"
            )

    # ------------------------------------------------------------------
    # Inverse-transform sampling (common-random-numbers coupling)
    # ------------------------------------------------------------------
    def draw_ttf(self, rng: np.random.Generator) -> float:
        """One time-to-failure draw; ``inf`` when crashes are disabled."""
        if math.isinf(self.mttf):
            rng.random()  # keep stream alignment with finite-MTTF runs
            return math.inf
        return _inverse_sample(self.ttf_distribution, self.mttf, self.weibull_shape, rng)

    def draw_ttr(self, rng: np.random.Generator) -> float:
        """One time-to-repair draw (0 for instant repair)."""
        if self.mttr == 0.0:
            rng.random()
            return 0.0
        return _inverse_sample(self.ttr_distribution, self.mttr, self.weibull_shape, rng)


def _inverse_sample(
    kind: str, mean: float, shape: float, rng: np.random.Generator
) -> float:
    """Draw from *kind* with the given mean via inverse-transform on one
    uniform variate — the uniform sequence is invariant to the mean, so
    sweeps over MTTF/MTTR stay coupled draw-for-draw."""
    u = rng.random()
    # guard the log against u == 0 (rng.random() is in [0, 1))
    u = max(u, 1e-300)
    if kind == "exponential":
        return -mean * math.log(u)
    # Weibull with mean calibrated via the gamma function:
    # mean = scale * Gamma(1 + 1/shape)  =>  scale = mean / Gamma(1 + 1/shape)
    scale = mean / math.gamma(1.0 + 1.0 / shape)
    return scale * (-math.log(u)) ** (1.0 / shape)
