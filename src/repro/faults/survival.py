"""Survival models: P(a node stays up for the next *t* time units).

The failure-aware pricing hooks weigh a candidate's expected yield by
the probability that the node it would occupy survives the task's
remaining processing time (see
:class:`repro.scheduling.survival.SurvivalDiscount` and the
``slack_inflation`` knob in :class:`repro.site.admission.SlackAdmission`).

Models are vectorized: ``p_survive`` accepts scalars or NumPy arrays of
horizons and returns probabilities of the same shape.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import SimulationError


class ExponentialSurvival:
    """Memoryless node lifetime: ``P(survive t) = exp(−t / mttf)``.

    Matches the exponential TTF model of :class:`repro.faults.FaultSpec`;
    memorylessness means the probability is the same regardless of how
    long the node has already been up, so the hook needs no per-node age
    tracking.
    """

    def __init__(self, mttf: float) -> None:
        if not mttf > 0 or math.isnan(mttf):
            raise SimulationError(f"mttf must be > 0, got {mttf!r}")
        self.mttf = float(mttf)

    def p_survive(self, horizon):
        """Survival probability over *horizon* (scalar or array)."""
        h = np.maximum(np.asarray(horizon, dtype=float), 0.0)
        if math.isinf(self.mttf):
            return np.ones_like(h)
        return np.exp(-h / self.mttf)

    def __repr__(self) -> str:
        return f"<ExponentialSurvival mttf={self.mttf:g}>"


class WeibullSurvival:
    """Weibull node lifetime: ``P(survive t) = exp(−(t/scale)^shape)``.

    A *fresh-node* approximation: it ignores accumulated uptime, which
    is exact for shape 1 (exponential) and conservative for shape > 1
    (wear-out makes an aged node weaker, not stronger).
    """

    def __init__(self, mttf: float, shape: float = 1.5) -> None:
        if not mttf > 0 or math.isnan(mttf):
            raise SimulationError(f"mttf must be > 0, got {mttf!r}")
        if not shape > 0:
            raise SimulationError(f"shape must be > 0, got {shape!r}")
        self.mttf = float(mttf)
        self.shape = float(shape)
        self.scale = (
            math.inf if math.isinf(mttf) else mttf / math.gamma(1.0 + 1.0 / shape)
        )

    def p_survive(self, horizon):
        h = np.maximum(np.asarray(horizon, dtype=float), 0.0)
        if math.isinf(self.scale):
            return np.ones_like(h)
        return np.exp(-((h / self.scale) ** self.shape))

    def __repr__(self) -> str:
        return f"<WeibullSurvival mttf={self.mttf:g} shape={self.shape:g}>"


def survival_for(spec) -> "ExponentialSurvival | WeibullSurvival":
    """The survival model matching a :class:`~repro.faults.FaultSpec`'s
    TTF distribution."""
    if spec.ttf_distribution == "weibull":
        return WeibullSurvival(spec.mttf, spec.weibull_shape)
    return ExponentialSurvival(spec.mttf)
