"""Restart policies: what happens to a task killed by a node crash.

The site engine vacates the crashed task's nodes and cancels its
completion event, then delegates the task's fate to a policy:

* :class:`RequeueRestart` — run again from scratch; all completed work
  is lost (the classic no-checkpoint model).
* :class:`CheckpointRestart` — completed work up to the last checkpoint
  survives; resuming costs a configurable reload overhead.
* :class:`AbandonRestart` — breach the contract: the task is cancelled
  and the site pays the value function's floor.  A task with unbounded
  penalties cannot legally be breached (an infinite payout), so abandon
  falls back to requeue-from-scratch for those.

Policies mutate only the task (via its crash transition) and report
what happened in a :class:`CrashOutcome`; ledger/stat updates stay in
the site engine where the other accounting hooks live.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import SimulationError
from repro.faults.spec import FaultSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tasks.task import Task


@dataclass(frozen=True)
class CrashOutcome:
    """What a restart policy did with one killed task."""

    requeued: bool  # False = contract breached (task cancelled)
    work_lost: float  # node-time of completed work thrown away
    penalty: float = 0.0  # breach penalty paid (positive magnitude)


def _progress(task: "Task", now: float) -> tuple[float, float]:
    """(total completed work, believed completed work) at crash time *now*.

    ``task.remaining`` is the true remaining as of the last dispatch, so
    total progress = runtime − (remaining − executed-since-start).
    """
    assert task.last_start is not None
    executed = max(0.0, now - task.last_start)
    done_true = task.runtime - max(0.0, task.remaining - executed)
    done_believed = task.estimate - max(0.0, task.estimated_remaining - executed)
    return max(0.0, done_true), max(0.0, done_believed)


class RestartPolicy(abc.ABC):
    """Decides the fate of a task whose node crashed mid-run."""

    name: str = "restart"

    @abc.abstractmethod
    def on_crash(self, task: "Task", now: float) -> CrashOutcome:
        """Apply the policy to *task* (currently RUNNING) at time *now*."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class RequeueRestart(RestartPolicy):
    """Re-run from scratch: the crash destroys all completed work."""

    name = "requeue"

    def on_crash(self, task: "Task", now: float) -> CrashOutcome:
        done, _ = _progress(task, now)
        task.crash(now, remaining=task.runtime, estimated_remaining=task.estimate)
        return CrashOutcome(requeued=True, work_lost=done)


class CheckpointRestart(RestartPolicy):
    """Resume from the last checkpoint, paying a reload overhead.

    Parameters
    ----------
    overhead:
        Extra processing time added when the task resumes (state reload).
    interval:
        Checkpoint cadence; progress past the last full interval is
        lost.  ``None`` models continuous checkpointing.
    """

    name = "checkpoint"

    def __init__(self, overhead: float = 0.0, interval: Optional[float] = None) -> None:
        if overhead < 0:
            raise SimulationError(f"checkpoint overhead must be >= 0, got {overhead!r}")
        if interval is not None and not interval > 0:
            raise SimulationError(f"checkpoint interval must be > 0, got {interval!r}")
        self.overhead = float(overhead)
        self.interval = None if interval is None else float(interval)

    def _retained(self, done: float) -> float:
        if self.interval is None:
            return done
        return math.floor(done / self.interval) * self.interval

    def on_crash(self, task: "Task", now: float) -> CrashOutcome:
        done_true, done_believed = _progress(task, now)
        keep_true = self._retained(done_true)
        # the believed view retains the same wall-clock checkpoint
        keep_believed = min(done_believed, keep_true)
        task.crash(
            now,
            remaining=task.runtime - keep_true + self.overhead,
            estimated_remaining=max(0.0, task.estimate - keep_believed) + self.overhead,
        )
        return CrashOutcome(requeued=True, work_lost=done_true - keep_true + self.overhead)

    def __repr__(self) -> str:
        interval = "continuous" if self.interval is None else f"{self.interval:g}"
        return f"<CheckpointRestart overhead={self.overhead:g} interval={interval}>"


class AbandonRestart(RestartPolicy):
    """Breach the contract: cancel the task and pay the penalty floor.

    Unbounded-penalty tasks cannot be breached (the floor is −inf), so
    they fall back to requeue-from-scratch instead.
    """

    name = "abandon"

    def __init__(self) -> None:
        self._fallback = RequeueRestart()

    def on_crash(self, task: "Task", now: float) -> CrashOutcome:
        if math.isinf(task.vf.floor):
            return self._fallback.on_crash(task, now)
        done, _ = _progress(task, now)
        floor = task.cancel(now)
        return CrashOutcome(requeued=False, work_lost=done, penalty=max(0.0, -floor))


def make_restart_policy(spec: FaultSpec) -> RestartPolicy:
    """Build the restart policy a :class:`FaultSpec` names."""
    if spec.restart == "requeue":
        return RequeueRestart()
    if spec.restart == "checkpoint":
        return CheckpointRestart(spec.checkpoint_overhead, spec.checkpoint_interval)
    if spec.restart == "abandon":
        return AbandonRestart()
    raise SimulationError(f"unknown restart policy {spec.restart!r}")
