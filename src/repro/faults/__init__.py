"""Fault injection & reliability: node churn, restarts, breach penalties.

The paper prices *risk* — but without failures the only risk a task
service faces is queueing delay.  This package adds the missing half of
the risk model:

* :class:`FaultSpec` — configuration: MTTF/MTTR distributions, restart
  policy, failure-aware pricing knobs (all off by default).
* :class:`FaultInjector` — per-node crash/repair cycles as daemon DES
  processes on seeded RNG streams.
* :class:`RestartPolicy` and friends — requeue-from-scratch,
  checkpoint-resume, or abandon (contract breach at the penalty floor).
* :class:`ExponentialSurvival` / :class:`WeibullSurvival` — P(node
  survives t), feeding the survival-discount scheduling hook and the
  admission slack-inflation knob.
* :class:`MessageFaults` — protocol message loss with bounded
  exponential-backoff retry for the two-phase negotiation.
* :class:`FaultStats` — one shared counter object per run.

See ``docs/faults.md`` for the model and `repro.experiments.faults`
(CLI: ``repro faults``) for the MTTF sweep experiment.
"""

from repro.faults.injector import FaultInjector
from repro.faults.messages import MessageFaults
from repro.faults.restart import (
    AbandonRestart,
    CheckpointRestart,
    CrashOutcome,
    RequeueRestart,
    RestartPolicy,
    make_restart_policy,
)
from repro.faults.spec import FAULT_DISTRIBUTIONS, RESTART_POLICIES, FaultSpec
from repro.faults.stats import FaultStats
from repro.faults.survival import ExponentialSurvival, WeibullSurvival, survival_for

__all__ = [
    "FAULT_DISTRIBUTIONS",
    "RESTART_POLICIES",
    "AbandonRestart",
    "CheckpointRestart",
    "CrashOutcome",
    "ExponentialSurvival",
    "FaultInjector",
    "FaultSpec",
    "FaultStats",
    "MessageFaults",
    "RequeueRestart",
    "RestartPolicy",
    "WeibullSurvival",
    "make_restart_policy",
    "survival_for",
]
