"""Message-level fault model for the negotiation protocol.

The two-phase negotiation (§2) exchanges three one-way messages:
request → quotes → award.  Real grids drop messages; clients recover
with timeouts and bounded exponential-backoff retransmission.
:class:`MessageFaults` holds the loss model and retry discipline the
:class:`repro.market.protocol.LatentNegotiator` applies to each hop.

Loss draws come from a dedicated named RNG stream, so enabling message
faults never perturbs workload generation or node-fault traces.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import MarketError
from repro.faults.stats import FaultStats


class MessageFaults:
    """Loss probability + retry/backoff discipline for protocol messages.

    Parameters
    ----------
    rng:
        Seeded generator for loss draws (e.g.
        ``RandomStreams(seed).get("fault:messages")``).
    loss_prob:
        Per-message, per-hop independent loss probability in [0, 1).
    timeout:
        How long the client waits for the response to a hop before
        declaring it lost and retrying.
    max_retries:
        Retransmissions allowed per hop after the first attempt; once
        exhausted the negotiation fails (no contract).
    backoff:
        Exponential backoff base: retry *k* (0-based) waits
        ``timeout * backoff**k`` before retransmitting.
    stats:
        Optional shared :class:`FaultStats` receiving loss/retry counts.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        loss_prob: float = 0.1,
        timeout: float = 30.0,
        max_retries: int = 3,
        backoff: float = 2.0,
        stats: Optional[FaultStats] = None,
    ) -> None:
        if not 0.0 <= loss_prob < 1.0:
            raise MarketError(f"loss_prob must be in [0, 1), got {loss_prob!r}")
        if not timeout > 0:
            raise MarketError(f"timeout must be > 0, got {timeout!r}")
        if max_retries < 0:
            raise MarketError(f"max_retries must be >= 0, got {max_retries!r}")
        if not backoff >= 1.0:
            raise MarketError(f"backoff must be >= 1, got {backoff!r}")
        self.rng = rng
        self.loss_prob = float(loss_prob)
        self.timeout = float(timeout)
        self.max_retries = int(max_retries)
        self.backoff = float(backoff)
        self.stats = stats if stats is not None else FaultStats()

    # ------------------------------------------------------------------
    def lost(self) -> bool:
        """Draw one message fate; records a loss when it happens."""
        if self.loss_prob == 0.0:
            return False
        lost = bool(self.rng.random() < self.loss_prob)
        if lost:
            self.stats.messages_lost += 1
        return lost

    def retry_delay(self, attempt: int) -> float:
        """Wait before retransmission *attempt* (0-based): timeout + backoff."""
        return self.timeout * self.backoff**attempt

    def note_retry(self) -> None:
        self.stats.retries += 1

    def __repr__(self) -> str:
        return (
            f"<MessageFaults p={self.loss_prob:g} timeout={self.timeout:g} "
            f"retries={self.max_retries} backoff={self.backoff:g}>"
        )
