"""Counters for everything the reliability subsystem observes.

One :class:`FaultStats` instance is shared by the injector, the site's
crash handling, and (optionally) the market protocol, so a single object
summarizes the disruption a run experienced.  The experiment harness
serializes :meth:`summary` next to the yield metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class FaultStats:
    """Aggregate fault/recovery counters for one run."""

    crashes: int = 0  # node crash events injected
    repairs: int = 0  # node repair events completed
    tasks_killed: int = 0  # running tasks killed by a crash
    restarts: int = 0  # killed tasks put back in the queue
    abandoned: int = 0  # killed tasks whose contract was breached
    work_lost: float = 0.0  # node-time of completed work thrown away
    downtime: float = 0.0  # cumulative node-down time (node-time units)
    messages_lost: int = 0  # protocol messages dropped in flight
    retries: int = 0  # protocol retransmissions after a timeout
    _down_since: dict = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    # Downtime bookkeeping (driven by the injector)
    # ------------------------------------------------------------------
    def note_down(self, node_id: int, now: float) -> None:
        self.crashes += 1
        self._down_since[node_id] = now

    def note_up(self, node_id: int, now: float) -> None:
        self.repairs += 1
        since = self._down_since.pop(node_id, None)
        if since is not None:
            self.downtime += now - since

    def close(self, now: float) -> None:
        """Charge downtime for nodes still dead when the run ends."""
        for node_id, since in list(self._down_since.items()):
            self.downtime += now - since
            del self._down_since[node_id]

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        return {
            "crashes": self.crashes,
            "repairs": self.repairs,
            "tasks_killed": self.tasks_killed,
            "restarts": self.restarts,
            "abandoned": self.abandoned,
            "work_lost": self.work_lost,
            "downtime": self.downtime,
            "messages_lost": self.messages_lost,
            "retries": self.retries,
        }
