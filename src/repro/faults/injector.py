"""The fault injector: per-node crash/repair cycles as DES processes.

One daemon :class:`~repro.sim.process.Process` per node alternates

    up for TTF  →  crash  →  down for TTR  →  repair  →  up for TTF …

with TTF/TTR drawn from the :class:`~repro.faults.FaultSpec`'s
distributions on a dedicated named RNG stream per node (so adding or
removing nodes never perturbs another node's fault trace, and the same
(seed, node) pair always crashes at the same times).

Event-liveness semantics matter here:

* *Crash* timeouts are **daemon** events — a pending crash never keeps
  the simulation alive, so a run still ends when the real work drains
  (faults only strike while there is work to disrupt).
* *Repair* timeouts are **essential** — once a node is down, the repair
  always lands.  Otherwise a run could end with the queue non-empty and
  every node dead: the repair event is precisely what un-wedges it.

The injector publishes crashes/repairs through two callbacks instead of
importing the site layer, keeping ``repro.faults`` below ``repro.site``
in the dependency order.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable, Iterable, Optional

from repro.faults.spec import FaultSpec
from repro.faults.stats import FaultStats
from repro.sim.kernel import Simulator
from repro.sim.process import Interrupt, Process, Timeout
from repro.sim.rng import RandomStreams

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.obs.instrument import Observability


class FaultInjector:
    """Drives crash/repair cycles for a set of nodes.

    Parameters
    ----------
    sim:
        The simulation kernel.
    spec:
        Fault model configuration (MTTF/MTTR, distributions).
    node_ids:
        Stable node identities to inject faults on (see
        :meth:`repro.site.processors.ProcessorPool.node_ids_of`).
    streams:
        Seeded stream factory; node *n* draws from stream
        ``"{stream_prefix}:node:{n}"``.
    on_crash / on_repair:
        Callables invoked with the node id when its state flips.
    stats:
        Optional shared :class:`FaultStats` (created when omitted).
    obs:
        Optional :class:`~repro.obs.instrument.Observability` that
        receives crash/repair counters, a time-weighted nodes-down
        gauge, and per-node instant span marks.  Observer only: fault
        timing is drawn from the same streams with or without it.
    """

    def __init__(
        self,
        sim: Simulator,
        spec: FaultSpec,
        node_ids: Iterable[int],
        streams: RandomStreams,
        on_crash: Callable[[int], None],
        on_repair: Callable[[int], None],
        stats: Optional[FaultStats] = None,
        stream_prefix: str = "fault",
        obs: "Optional[Observability]" = None,
    ) -> None:
        self.sim = sim
        self.spec = spec
        self.streams = streams
        self.on_crash = on_crash
        self.on_repair = on_repair
        self.stats = stats if stats is not None else FaultStats()
        self.stream_prefix = stream_prefix
        self.obs = obs
        self._down_count = 0
        self.processes: list[Process] = []
        if spec.enabled:
            for node_id in node_ids:
                self.processes.append(
                    Process(
                        sim,
                        self._node_loop(int(node_id)),
                        name=f"fault:{node_id}",
                        daemon=True,
                    )
                )

    # ------------------------------------------------------------------
    def _node_loop(self, node_id: int):
        rng = self.streams.get(f"{self.stream_prefix}:node:{node_id}")
        try:
            while True:
                ttf = self.spec.draw_ttf(rng)
                if math.isinf(ttf):
                    return  # crashes disabled (mttf=inf): nothing to do
                yield Timeout(ttf, daemon=True)
                self.stats.note_down(node_id, self.sim.now)
                if self.obs is not None:
                    self._down_count += 1
                    self.obs.node_crashed(node_id, self.sim.now, self._down_count)
                self.on_crash(node_id)
                ttr = self.spec.draw_ttr(rng)
                # essential: a down node's repair must fire even if it is
                # the only future event — it may be what unblocks the queue
                yield Timeout(ttr)
                self.stats.note_up(node_id, self.sim.now)
                if self.obs is not None:
                    self._down_count -= 1
                    self.obs.node_repaired(node_id, self.sim.now, self._down_count)
                self.on_repair(node_id)
        except Interrupt:
            return  # stop() shuts the loop down cleanly

    # ------------------------------------------------------------------
    def stop(self) -> int:
        """Interrupt every live node loop; returns how many were stopped."""
        stopped = 0
        for process in self.processes:
            if process.alive:
                process.interrupt("injector shutdown")
                stopped += 1
        return stopped

    @property
    def active_count(self) -> int:
        return sum(1 for p in self.processes if p.alive)

    def __repr__(self) -> str:
        return (
            f"<FaultInjector nodes={len(self.processes)} "
            f"crashes={self.stats.crashes} repairs={self.stats.repairs}>"
        )
