"""Double-entry economic audit over a market flight recording.

The market's money flow obeys a handful of conservation laws: a task's
value is created exactly once (at bid), an award needs an issued quote,
a contract settles exactly once, a breach refund never hands the client
more than it committed plus the site's penalty, and every site's
recorded settlements must reconcile with its closing books to the cent.
``repro audit`` replays a recording's ledger against those laws and
reports machine-readable violations — generalizing the resilience
layer's conservation property (value settles exactly once) into a
runtime auditor usable on any recording, sim or live.

Violation codes::

    duplicate_bid            bid_id recorded twice — value created twice
    quote_unknown_bid        quote references a bid never recorded
    award_unknown_bid        award references a bid never recorded
    award_without_quote      award with no issued quote from that site
    award_above_quote        agreed price exceeds the quoted price
    duplicate_award          contract_id awarded twice
    settlement_without_award settlement for an unknown contract
    duplicate_settlement     contract settled twice
    settlement_exceeds_value settled price exceeds the bid's value
    settlement_price_drift   completed price != value function's price
    refund_exceeds_commitment breach/abandon settles above committed spend
    unsettled_contract       award whose contract never settled
    revenue_mismatch         site summary revenue != sum of settlements
    contract_count_mismatch  site summary contract count != awards seen
    recovery_without_award   crash recovery re-settled an unknown contract

Durability records (the live service's write-ahead journal) are part of
the ledger too: ``intent``/``shed``/``recovery`` records are counted,
and a ``recovery`` re-settlement must reference a contract actually
awarded on the record — recovery may close books, never invent them.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field

from repro.obs.flight import Recording, read_recording

#: Bump when the violation-report layout changes incompatibly.
AUDIT_SCHEMA = 1

#: "To the cent": reconciliation tolerance for money sums.
CENT = 0.005

#: Relative tolerance for recomputed single prices (float round-trip).
_REL = 1e-9


@dataclass
class AuditReport:
    """The outcome of auditing one recording."""

    clock: str
    counts: dict = field(default_factory=dict)
    violations: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, code: str, message: str, **context: object) -> None:
        self.violations.append({"code": code, "message": message, **context})

    def to_doc(self) -> dict:
        return {
            "schema": AUDIT_SCHEMA,
            "ok": self.ok,
            "clock": self.clock,
            "counts": self.counts,
            "violations": self.violations,
        }

    def format(self) -> str:
        lines = [
            f"audit: {self.counts.get('bids', 0)} bids, "
            f"{self.counts.get('quotes', 0)} quotes, "
            f"{self.counts.get('awards', 0)} awards, "
            f"{self.counts.get('settlements', 0)} settlements "
            f"({self.clock} clock)"
        ]
        if self.ok:
            lines.append("audit: ledger is clean — every invariant holds")
        else:
            lines.append(f"audit: {len(self.violations)} violation(s)")
            for violation in self.violations:
                context = {
                    k: v
                    for k, v in violation.items()
                    if k not in ("code", "message")
                }
                suffix = f"  {context}" if context else ""
                lines.append(f"  [{violation['code']}] {violation['message']}{suffix}")
        return "\n".join(lines)


def _price_of(bid: dict, completion: float, release: float) -> float:
    """Recompute the contract price from the bid's value function."""
    from repro.valuefn.linear import LinearDecayValueFunction

    bound = bid.get("bound")
    vf = LinearDecayValueFunction(
        bid["value"], bid["decay"], None if bound is None else bound
    )
    delay = max(0.0, completion - release - bid["runtime"])
    return vf.yield_at(delay)


def audit_recording(recording: Recording) -> AuditReport:
    """Check every economic invariant over *recording*'s ledger."""
    report = AuditReport(clock=recording.clock)

    bids: dict[int, dict] = {}
    for event in recording.of_kind("bid"):
        bid_id = event["bid_id"]
        if bid_id in bids:
            report.add(
                "duplicate_bid",
                f"bid {bid_id} recorded twice — task value created twice",
                bid_id=bid_id,
                seq=event["seq"],
            )
        else:
            bids[bid_id] = event

    # issued quotes by (site, bid): the precondition for any award
    quoted_price: dict[tuple[str, int], float] = {}
    quotes = recording.of_kind("quote")
    for event in quotes:
        if event["bid_id"] not in bids:
            report.add(
                "quote_unknown_bid",
                f"quote from {event['site_id']} references unknown bid "
                f"{event['bid_id']}",
                bid_id=event["bid_id"],
                site_id=event["site_id"],
                seq=event["seq"],
            )
        if event["verdict"] == "issued":
            key = (event["site_id"], event["bid_id"])
            price = event["price"]
            quoted_price[key] = max(quoted_price.get(key, -math.inf), price)

    awards: dict[int, dict] = {}
    awards_by_site: dict[str, int] = {}
    for event in recording.of_kind("award"):
        bid_id = event["bid_id"]
        site_id = event["site_id"]
        if bid_id not in bids:
            report.add(
                "award_unknown_bid",
                f"award of unknown bid {bid_id} to {site_id}",
                bid_id=bid_id,
                site_id=site_id,
                seq=event["seq"],
            )
        key = (site_id, bid_id)
        if key not in quoted_price:
            report.add(
                "award_without_quote",
                f"bid {bid_id} awarded to {site_id} with no issued quote on record",
                bid_id=bid_id,
                site_id=site_id,
                seq=event["seq"],
            )
        elif event["agreed_price"] > quoted_price[key] + CENT:
            report.add(
                "award_above_quote",
                f"contract {event['contract_id']} agreed at "
                f"{event['agreed_price']:.4f} > quoted {quoted_price[key]:.4f} "
                "(pricing may only hold or lower the quote)",
                contract_id=event["contract_id"],
                site_id=site_id,
                seq=event["seq"],
            )
        contract_id = event["contract_id"]
        if contract_id in awards:
            report.add(
                "duplicate_award",
                f"contract {contract_id} awarded twice",
                contract_id=contract_id,
                seq=event["seq"],
            )
        else:
            awards[contract_id] = event
            awards_by_site[site_id] = awards_by_site.get(site_id, 0) + 1

    settled: set[int] = set()
    revenue_by_site: dict[str, float] = {}
    settlements = recording.of_kind("settlement")
    for event in settlements:
        contract_id = event["contract_id"]
        award = awards.get(contract_id)
        if award is None:
            report.add(
                "settlement_without_award",
                f"settlement of unknown contract {contract_id}",
                contract_id=contract_id,
                seq=event["seq"],
            )
        if contract_id in settled:
            report.add(
                "duplicate_settlement",
                f"contract {contract_id} settled twice — value settles once",
                contract_id=contract_id,
                seq=event["seq"],
            )
            continue
        settled.add(contract_id)
        price = event["price"]
        site_id = event["site_id"]
        revenue_by_site[site_id] = revenue_by_site.get(site_id, 0.0) + price
        bid = bids.get(event["bid_id"])
        if bid is None:
            continue  # already reported via the award/quote checks
        tolerance = max(CENT, abs(bid["value"]) * _REL)
        if price > bid["value"] + tolerance:
            report.add(
                "settlement_exceeds_value",
                f"contract {contract_id} settled at {price:.4f} > bid value "
                f"{bid['value']:.4f} — value cannot be created at settlement",
                contract_id=contract_id,
                seq=event["seq"],
            )
        if event["outcome"] == "completed":
            release = bid.get("released_at")
            if release is None:
                release = bid["t"]
            expected = _price_of(bid, event["completion"], release)
            if abs(price - expected) > tolerance:
                report.add(
                    "settlement_price_drift",
                    f"contract {contract_id} settled at {price:.4f}, value "
                    f"function prices its completion at {expected:.4f}",
                    contract_id=contract_id,
                    seq=event["seq"],
                )
        else:  # breached / abandoned
            committed = max(0.0, event["agreed_price"])
            if price > committed + tolerance:
                report.add(
                    "refund_exceeds_commitment",
                    f"contract {contract_id} {event['outcome']} yet settled at "
                    f"{price:.4f} > committed spend {committed:.4f} — the "
                    "client would be refunded value it never committed",
                    contract_id=contract_id,
                    seq=event["seq"],
                )

    for contract_id, award in sorted(awards.items()):
        if contract_id not in settled:
            report.add(
                "unsettled_contract",
                f"contract {contract_id} (bid {award['bid_id']} at "
                f"{award['site_id']}) never settled",
                contract_id=contract_id,
                site_id=award["site_id"],
            )

    recoveries = recording.of_kind("recovery")
    for event in recoveries:
        if event.get("action") != "resettle":
            continue
        contract_id = event.get("contract_id")
        if contract_id not in awards:
            report.add(
                "recovery_without_award",
                f"crash recovery re-settled contract {contract_id} with no "
                "award on record — recovery may close books, never invent them",
                contract_id=contract_id,
                seq=event["seq"],
            )

    summaries = recording.of_kind("site_summary")
    for event in summaries:
        site_id = event["site_id"]
        recorded = revenue_by_site.get(site_id, 0.0)
        if abs(event["revenue"] - recorded) > CENT:
            report.add(
                "revenue_mismatch",
                f"site {site_id} closing revenue {event['revenue']:.4f} != "
                f"{recorded:.4f} summed from its settlements",
                site_id=site_id,
                seq=event["seq"],
            )
        awarded = awards_by_site.get(site_id, 0)
        if event["contracts"] != awarded:
            report.add(
                "contract_count_mismatch",
                f"site {site_id} closing books show {event['contracts']} "
                f"contracts, recording has {awarded} awards",
                site_id=site_id,
                seq=event["seq"],
            )

    report.counts = {
        "bids": len(bids),
        "quotes": len(quotes),
        "quotes_issued": sum(1 for q in quotes if q["verdict"] == "issued"),
        "awards": len(awards),
        "settlements": len(settlements),
        "sites": len(summaries),
        "intents": len(recording.of_kind("intent")),
        "sheds": len(recording.of_kind("shed")),
        "recoveries": len(recoveries),
        "total_revenue": sum(revenue_by_site.values()),
    }
    return report


# ----------------------------------------------------------------------
# CLI (`repro audit`)
# ----------------------------------------------------------------------

def add_audit_arguments(parser) -> None:
    parser.add_argument("recording", help="flight-recorder JSONL file to audit")
    parser.add_argument(
        "--format", choices=["text", "json"], default="text", dest="fmt"
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH", help="also write the report as JSON"
    )


def run_audit(args) -> int:
    """Entry point for ``repro audit``: 0 clean, 1 violations, 2 unreadable."""
    try:
        recording = read_recording(args.recording)
    except (OSError, ValueError) as exc:
        print(f"audit: cannot read recording: {exc}")
        return 2
    report = audit_recording(recording)
    if args.fmt == "json":
        print(json.dumps(report.to_doc(), sort_keys=True, indent=1))
    else:
        print(report.format())
    if args.out:
        directory = os.path.dirname(args.out)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(args.out, "w") as handle:
            json.dump(report.to_doc(), handle, sort_keys=True, indent=1)
            handle.write("\n")
        print(f"wrote {args.out}")
    return 0 if report.ok else 1


__all__ = [
    "AUDIT_SCHEMA",
    "AuditReport",
    "audit_recording",
    "add_audit_arguments",
    "run_audit",
]
