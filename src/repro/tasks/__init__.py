"""Task, bid, and contract models (§2–§4 of the paper)."""

from repro.tasks.bid import ServerBid, TaskBid
from repro.tasks.contract import Contract
from repro.tasks.task import Task, TaskState

__all__ = ["Contract", "ServerBid", "Task", "TaskBid", "TaskState"]
