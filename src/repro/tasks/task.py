"""The task model.

A task is a batch job (§2): it consumes one node for ``runtime`` time
units and delivers no value until it completes.  Its worth to the user is
given by a value function of its *delay* — completion time beyond the
best case ``arrival + runtime`` (Eq. 2).

Tasks carry a small state machine so the site engine, admission control,
and accounting can assert legal transitions:

    CREATED → SUBMITTED → {QUEUED | REJECTED}
    QUEUED ⇄ RUNNING (preemption returns RUNNING → QUEUED)
    RUNNING → COMPLETED
    {QUEUED, RUNNING} → CANCELLED  (expired-task discard / contract breach)
"""

from __future__ import annotations

import enum
import itertools
import math
from typing import Optional

from repro.errors import SchedulingError
from repro.valuefn.base import ValueFunction
from repro.valuefn.linear import LinearDecayValueFunction

_task_ids = itertools.count()


def reserve_task_ids(next_id: int) -> int:
    """Advance the task-id counter to at least *next_id*.

    Crash recovery reserves past a replayed journal's maximum
    ``task_tid`` so post-recovery awards don't reuse a tid already on
    the record.  Returns the new floor; never moves backwards.
    """
    global _task_ids
    current = next(_task_ids)
    floor = max(current + 1, int(next_id))
    _task_ids = itertools.count(floor)
    return floor


class TaskState(enum.Enum):
    CREATED = "created"
    SUBMITTED = "submitted"
    REJECTED = "rejected"
    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    CANCELLED = "cancelled"


_ALLOWED = {
    TaskState.CREATED: {TaskState.SUBMITTED},
    TaskState.SUBMITTED: {TaskState.QUEUED, TaskState.REJECTED},
    TaskState.QUEUED: {TaskState.RUNNING, TaskState.CANCELLED},
    TaskState.RUNNING: {TaskState.QUEUED, TaskState.COMPLETED, TaskState.CANCELLED},
    TaskState.REJECTED: set(),
    TaskState.COMPLETED: set(),
    TaskState.CANCELLED: set(),
}

_TERMINAL = {TaskState.REJECTED, TaskState.COMPLETED, TaskState.CANCELLED}


class Task:
    """A batch job with a value function.

    Parameters
    ----------
    arrival:
        Release time (the paper's ``arrive_i``).
    runtime:
        Minimum (and, per §4's assumptions, exact) processing time.
    vf:
        The task's value function.  The vectorized site engine requires a
        :class:`~repro.valuefn.linear.LinearDecayValueFunction`; the
        generic scheduling path accepts any
        :class:`~repro.valuefn.base.ValueFunction`.
    demand:
        Number of nodes requested (the paper's experiments use 1).
    tid:
        Stable identifier; auto-assigned when omitted.
    """

    __slots__ = (
        "tid",
        "arrival",
        "runtime",
        "estimate",
        "vf",
        "demand",
        "state",
        "remaining",
        "estimated_remaining",
        "first_start",
        "last_start",
        "completion",
        "preemptions",
        "restarts",
        "realized_yield",
        "rejected_at",
    )

    def __init__(
        self,
        arrival: float,
        runtime: float,
        vf: ValueFunction,
        demand: int = 1,
        tid: Optional[int] = None,
        estimate: Optional[float] = None,
    ) -> None:
        if not math.isfinite(arrival) or arrival < 0:
            raise SchedulingError(f"arrival must be finite and >= 0, got {arrival!r}")
        if not math.isfinite(runtime) or runtime <= 0:
            raise SchedulingError(f"runtime must be finite and > 0, got {runtime!r}")
        if demand < 1:
            raise SchedulingError(f"demand must be >= 1, got {demand!r}")
        if estimate is not None and (not math.isfinite(estimate) or estimate <= 0):
            raise SchedulingError(f"estimate must be finite and > 0, got {estimate!r}")
        self.tid = next(_task_ids) if tid is None else int(tid)
        self.arrival = float(arrival)
        self.runtime = float(runtime)
        # the user-declared service demand.  The paper's evaluation assumes
        # accurate predictions (estimate == runtime); the misestimation
        # extension lets them differ — the scheduler sees only the
        # estimate, while execution consumes the true runtime, and the
        # value function's delay is measured against the declared estimate
        # (so underestimates pay the "exceedance penalty" naturally).
        self.estimate = self.runtime if estimate is None else float(estimate)
        self.vf = vf
        self.demand = int(demand)
        self.state = TaskState.CREATED
        self.remaining = self.runtime  # true remaining work
        self.estimated_remaining = self.estimate  # the paper's RPT_i (believed)
        self.first_start: Optional[float] = None
        self.last_start: Optional[float] = None
        self.completion: Optional[float] = None
        self.preemptions = 0
        self.restarts = 0
        self.realized_yield: Optional[float] = None
        self.rejected_at: Optional[float] = None

    # ------------------------------------------------------------------
    # Convenience accessors for the linear model (used everywhere in the
    # paper's evaluation)
    # ------------------------------------------------------------------
    @property
    def linear_vf(self) -> LinearDecayValueFunction:
        if not isinstance(self.vf, LinearDecayValueFunction):
            raise SchedulingError(
                f"task {self.tid} has a {type(self.vf).__name__}; this code path "
                "requires a LinearDecayValueFunction"
            )
        return self.vf

    @property
    def value(self) -> float:
        return self.linear_vf.value

    @property
    def decay(self) -> float:
        return self.linear_vf.decay

    @property
    def bound(self) -> float:
        """Penalty bound as a float (inf when unbounded)."""
        return self.linear_vf.bound_or_inf()

    # ------------------------------------------------------------------
    # Yield arithmetic (Eqs. 1–2)
    # ------------------------------------------------------------------
    def delay_if_completed_at(self, completion: float) -> float:
        """Delay for a given completion time: ``completion − arrival − estimate``.

        The best case is measured against the *declared* runtime: with
        accurate predictions (the paper's assumption) this is Eq. 2
        verbatim; with underestimates the overrun counts as delay, so the
        value function levies the exceedance penalty automatically.
        """
        return max(0.0, completion - self.arrival - self.estimate)

    def delay_if_started_at(self, start: float) -> float:
        """Expected delay when the believed remaining work starts at *start* (Eq. 2)."""
        return self.delay_if_completed_at(start + self.estimated_remaining)

    def yield_if_completed_at(self, completion: float) -> float:
        return self.vf.yield_at(self.delay_if_completed_at(completion))

    def yield_if_started_at(self, start: float) -> float:
        return self.vf.yield_at(self.delay_if_started_at(start))

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------
    def _transition(self, to: TaskState) -> None:
        if to not in _ALLOWED[self.state]:
            raise SchedulingError(
                f"task {self.tid}: illegal transition {self.state.value} -> {to.value}"
            )
        self.state = to

    @property
    def finished(self) -> bool:
        return self.state in _TERMINAL

    def submit(self) -> None:
        self._transition(TaskState.SUBMITTED)

    def reject(self, now: float) -> None:
        self._transition(TaskState.REJECTED)
        self.rejected_at = now

    def accept(self) -> None:
        self._transition(TaskState.QUEUED)

    def start(self, now: float) -> None:
        self._transition(TaskState.RUNNING)
        if self.first_start is None:
            self.first_start = now
        self.last_start = now

    def preempt(self, now: float) -> None:
        """Suspend the task, crediting the work done since its last start."""
        if self.last_start is None:
            raise SchedulingError(f"task {self.tid}: preempt before start")
        executed = now - self.last_start
        if executed < -1e-12 or executed > self.remaining + 1e-9:
            raise SchedulingError(
                f"task {self.tid}: executed {executed!r} out of range "
                f"[0, {self.remaining!r}]"
            )
        self._transition(TaskState.QUEUED)
        executed = max(0.0, executed)
        self.remaining = max(0.0, self.remaining - executed)
        self.estimated_remaining = max(0.0, self.estimated_remaining - executed)
        self.preemptions += 1

    def crash(self, now: float, remaining: float, estimated_remaining: float) -> None:
        """Requeue after a node crash with the given residual work.

        The restart policy decides how much progress survives (all of it
        lost for requeue-from-scratch, checkpointed work retained plus a
        reload overhead for checkpoint-resume); this primitive applies
        the transition and the residuals.  Unlike :meth:`preempt`, the
        residual can exceed the work outstanding at the crash (overhead)
        or the original runtime is restored wholesale.
        """
        if self.last_start is None:
            raise SchedulingError(f"task {self.tid}: crash before start")
        if remaining < 0 or estimated_remaining < 0:
            raise SchedulingError(
                f"task {self.tid}: crash residuals must be >= 0, got "
                f"remaining={remaining!r} estimated={estimated_remaining!r}"
            )
        self._transition(TaskState.QUEUED)
        self.remaining = float(remaining)
        # the believed view never hits exactly 0 for unfinished work: a
        # zero-RPT entry would quote an instant completion it cannot meet
        self.estimated_remaining = max(float(estimated_remaining), 1e-9)
        self.restarts += 1

    def complete(self, now: float) -> float:
        """Finish the task, recording and returning its realized yield."""
        self._transition(TaskState.COMPLETED)
        self.remaining = 0.0
        self.estimated_remaining = 0.0
        self.completion = now
        self.realized_yield = self.yield_if_completed_at(now)
        return self.realized_yield

    def cancel(self, now: float) -> float:
        """Abandon the task; the realized yield is the value-function floor.

        Only meaningful with bounded penalties (the site pays the bound);
        cancelling an unbounded task is a contract breach and is refused.
        """
        floor = self.vf.floor
        if math.isinf(floor):
            raise SchedulingError(
                f"task {self.tid}: cannot cancel a task with unbounded penalties"
            )
        self._transition(TaskState.CANCELLED)
        self.completion = now
        self.realized_yield = floor
        return floor

    def abort(self, now: float) -> float:
        """Abandon a task whose execution failed (live mode).

        Unlike :meth:`cancel` — the simulator's expired-task discard,
        defined only for bounded penalties — abandonment of a *failed*
        execution is defined for any value function: the client owes
        nothing for work never delivered, but any penalty accrued by the
        abandonment instant still stands.  The realized yield is
        therefore ``min(0, yield_at(delay))`` (automatically floored at
        ``−bound`` when bounded).  Simulated runs never call this; only
        the :mod:`repro.live` executor does, when a subprocess exits
        non-zero or is killed at its timeout.
        """
        self._transition(TaskState.CANCELLED)
        self.completion = now
        self.realized_yield = min(0.0, self.yield_if_completed_at(now))
        return self.realized_yield

    def __repr__(self) -> str:
        return (
            f"<Task {self.tid} {self.state.value} arr={self.arrival:g} "
            f"rt={self.runtime:g} rpt={self.remaining:g} vf={self.vf!r}>"
        )
