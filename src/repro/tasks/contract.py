"""Contracts formed when a client accepts a server bid (§2).

"Once the customer and the site agree on the expected completion time
and value, a contract is formed.  If the site delays the task beyond the
negotiated completion time, then the value function associated with the
contract determines the reduced price or penalty."
"""

from __future__ import annotations

import itertools
import math
from typing import Optional

from repro.errors import ContractViolation
from repro.tasks.bid import ServerBid, TaskBid
from repro.valuefn.linear import LinearDecayValueFunction

_contract_ids = itertools.count()


def reserve_contract_ids(next_id: int) -> int:
    """Advance the contract-id counter to at least *next_id*.

    The crash-recovery counterpart of ``reserve_bid_ids``: keeps
    post-recovery contract ids disjoint from everything already in the
    journal.  Returns the new floor.
    """
    global _contract_ids
    current = next(_contract_ids)
    floor = max(current + 1, int(next_id))
    _contract_ids = itertools.count(floor)
    return floor


class Contract:
    """A signed agreement between a client and a site for one task.

    The contract binds the task's value function; settlement evaluates it
    at the actual completion time.  ``settle`` may be called exactly
    once.
    """

    __slots__ = (
        "contract_id",
        "site_id",
        "client_id",
        "bid",
        "vf",
        "signed_at",
        "promised_completion",
        "agreed_price",
        "settled",
        "actual_completion",
        "actual_price",
        "task_tid",
    )

    def __init__(self, bid: TaskBid, server_bid: ServerBid, signed_at: float) -> None:
        if server_bid.bid_id != bid.bid_id:
            raise ContractViolation(
                f"server bid {server_bid.bid_id} does not answer client bid {bid.bid_id}"
            )
        self.contract_id = next(_contract_ids)
        self.site_id = server_bid.site_id
        self.client_id = bid.client_id
        self.bid = bid
        self.vf: LinearDecayValueFunction = bid.value_function()
        self.signed_at = float(signed_at)
        self.promised_completion = server_bid.expected_completion
        self.agreed_price = server_bid.expected_price
        self.settled = False
        self.actual_completion: Optional[float] = None
        self.actual_price: Optional[float] = None
        #: tid of the site-side task executing this contract (set at
        #: award time; links market spans to task lifecycle spans)
        self.task_tid: Optional[int] = None

    def price_at(self, completion: float, release: float) -> float:
        """Price owed if the task released at *release* completes at *completion*."""
        delay = max(0.0, completion - release - self.bid.runtime)
        return self.vf.yield_at(delay)

    def settle(self, completion: float, release: float) -> float:
        """Record the actual completion; returns the price (or penalty) owed."""
        if self.settled:
            raise ContractViolation(f"contract {self.contract_id} already settled")
        if not math.isfinite(completion) or completion < self.signed_at:
            raise ContractViolation(
                f"settlement completion {completion!r} precedes signing "
                f"at {self.signed_at!r}"
            )
        self.settled = True
        self.actual_completion = float(completion)
        self.actual_price = self.price_at(completion, release)
        return self.actual_price

    def settle_breach(self, now: float) -> float:
        """Settle an abandoned task at the value-function floor (bounded only)."""
        if self.settled:
            raise ContractViolation(f"contract {self.contract_id} already settled")
        floor = self.vf.floor
        if math.isinf(floor):
            raise ContractViolation(
                f"contract {self.contract_id}: cannot abandon a task with "
                "unbounded penalties"
            )
        self.settled = True
        self.actual_completion = float(now)
        self.actual_price = floor
        return floor

    def settle_abandoned(self, now: float, release: float) -> float:
        """Settle a contract whose execution failed (live mode).

        :meth:`settle_breach` covers the simulator's abandonment case —
        bounded penalties, floor owed.  A *live* execution can also fail
        with unbounded penalties (subprocess error, timeout kill), where
        no floor exists; the accounting is then: the client owes nothing
        for results never delivered, and the site owes whatever penalty
        the value function has accrued by the abandonment instant —
        ``min(0, price_at(now))``, which the bounded case floors at
        ``−bound`` as usual.
        """
        if self.settled:
            raise ContractViolation(f"contract {self.contract_id} already settled")
        if not math.isfinite(now) or now < self.signed_at:
            raise ContractViolation(
                f"abandonment time {now!r} precedes signing at {self.signed_at!r}"
            )
        self.settled = True
        self.actual_completion = float(now)
        self.actual_price = min(0.0, self.price_at(now, release))
        return self.actual_price

    @property
    def on_time(self) -> bool:
        """True if the settled completion met the promise (unset ⇒ False)."""
        return (
            self.settled
            and self.actual_completion is not None
            and self.actual_completion <= self.promised_completion + 1e-9
        )

    def __repr__(self) -> str:
        status = "settled" if self.settled else "open"
        return (
            f"<Contract {self.contract_id} site={self.site_id!r} "
            f"promised={self.promised_completion:g} {status}>"
        )
