"""Bids exchanged in the market protocol (§2, §6).

A client submits a :class:`TaskBid` — "each task i's expected run time
and its value function as a tuple (runtime_i, value_i, decay_i,
bound_i)" (§6).  A site that accepts responds with a :class:`ServerBid`
carrying the expected completion time and the expected price in the
site's candidate schedule.  Site policies "act as if the price is
derived directly from the original value function" (§6); pluggable
pricing lives in :mod:`repro.market.pricing`.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import MarketError
from repro.valuefn.linear import LinearDecayValueFunction

_bid_ids = itertools.count()


def reserve_bid_ids(next_id: int) -> int:
    """Advance the bid-id counter to at least *next_id*; returns the floor.

    Crash recovery calls this after replaying a journal: a restarted
    process would otherwise hand out ids already on the record, and the
    stitched journal would show two distinct bids sharing one id.  The
    counter never moves backwards — one id is consumed to learn its
    position, so no previously issued id can recur.
    """
    global _bid_ids
    current = next(_bid_ids)
    floor = max(current + 1, int(next_id))
    _bid_ids = itertools.count(floor)
    return floor


@dataclass(frozen=True)
class TaskBid:
    """A client's sealed bid for running one task.

    Attributes
    ----------
    runtime:
        Declared service demand (assumed accurate, §4).
    value, decay:
        The linear value function's parameters.
    bound:
        Penalty bound (``None`` = unbounded penalties).
    demand:
        Nodes requested (1 in all paper experiments).
    client_id:
        Opaque identifier of the bidding client/broker.
    released_at:
        Simulated time the client released the task — the anchor the
        value function decays from.  ``None`` means "anchor at award
        time" (instant-negotiation semantics); brokers fill it in with
        the negotiation start time so protocol latency counts as delay.
    """

    runtime: float
    value: float
    decay: float
    bound: Optional[float] = None
    demand: int = 1
    client_id: Optional[str] = None
    released_at: Optional[float] = None
    bid_id: int = field(default_factory=lambda: next(_bid_ids))

    def __post_init__(self) -> None:
        if not math.isfinite(self.runtime) or self.runtime <= 0:
            raise MarketError(f"bid runtime must be finite and > 0, got {self.runtime!r}")
        if self.demand < 1:
            raise MarketError(f"bid demand must be >= 1, got {self.demand!r}")
        # delegate value/decay/bound validation to the value-function model
        self.value_function()

    def value_function(self) -> LinearDecayValueFunction:
        """Materialize the bid's value function."""
        return LinearDecayValueFunction(self.value, self.decay, self.bound)

    def as_tuple(self) -> tuple[float, float, float, Optional[float]]:
        """The paper's ``(runtime, value, decay, bound)`` tuple."""
        return (self.runtime, self.value, self.decay, self.bound)


@dataclass(frozen=True)
class ServerBid:
    """A site's response to a TaskBid it is willing to accept.

    ``expected_completion`` and ``expected_price`` are read off the
    site's candidate schedule at bid time; they are expectations, not
    guarantees — later arrivals may delay the task, in which case the
    contract's value function determines the reduced price or penalty
    (§2).

    ``expires_at`` is the quote's time-to-live deadline in sim time: the
    schedule the quote was computed against keeps moving, so a site may
    refuse to honour the quoted terms past this instant and the broker
    must revalidate (re-solicit) before awarding.  ``None`` — the
    default everywhere — is the original open-ended-quote semantics.
    """

    site_id: str
    bid_id: int
    expected_completion: float
    expected_price: float
    expected_slack: float
    expires_at: Optional[float] = None

    def __post_init__(self) -> None:
        if not math.isfinite(self.expected_completion):
            raise MarketError(
                f"expected_completion must be finite, got {self.expected_completion!r}"
            )
        if self.expires_at is not None and not math.isfinite(self.expires_at):
            raise MarketError(f"expires_at must be finite, got {self.expires_at!r}")

    def expired(self, now: float) -> bool:
        """Whether the quote's TTL has lapsed at sim time *now*."""
        return self.expires_at is not None and now > self.expires_at + 1e-9
