"""Real subprocess execution for live mode.

The simulator "runs" a task by scheduling a completion event; the live
executor runs it as an actual child process.  Three responsibilities:

* **Throttle** — an :class:`asyncio.Semaphore` caps concurrently running
  children at the site's slot count.  The site only dispatches when its
  :class:`~repro.site.processors.ProcessorPool` shows a free node, so in
  normal operation the semaphore never blocks; it is the hard backstop
  that no scheduling bug can fork-bomb the host.
* **Status polling** — the executor wakes every ``poll_interval`` wall
  seconds to check the child and the watchdog deadline, rather than
  blocking indefinitely on ``wait()``.
* **Timeout kill** — a child that outlives its deadline (market units,
  measured on the live clock) is killed; the report marks it so the
  site settles the contract as an abandonment instead of a completion.

Durations cross the units/seconds boundary exactly once, here: the
market speaks units, the kernel speaks seconds, and ``rate`` (units per
second) converts at dispatch.
"""

from __future__ import annotations

import asyncio
import sys
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.errors import LiveServiceError
from repro.sim.clock import Clock


def sleep_argv(seconds: float) -> tuple[str, ...]:
    """Default task command: sleep for the declared runtime.

    A service whose contracts price *duration* owes the client nothing
    but elapsed time; a real deployment would substitute the client's
    workload command via the bid's ``argv``.
    """
    return (sys.executable, "-c", f"import time; time.sleep({max(0.0, seconds)!r})")


@dataclass(frozen=True)
class ExecutionReport:
    """What happened to one subprocess run."""

    returncode: Optional[int]
    killed: bool
    started_at: float  # market units
    ended_at: float  # market units

    @property
    def ok(self) -> bool:
        return self.returncode == 0 and not self.killed


class SubprocessExecutor:
    """Runs task commands as child processes under a concurrency cap."""

    def __init__(
        self,
        clock: Clock,
        rate: float,
        max_running: int,
        poll_interval: float = 0.05,
    ) -> None:
        if max_running < 1:
            raise LiveServiceError(f"max_running must be >= 1, got {max_running!r}")
        if not rate > 0:
            raise LiveServiceError(f"rate must be > 0, got {rate!r}")
        if not poll_interval > 0:
            raise LiveServiceError(
                f"poll_interval must be > 0, got {poll_interval!r}"
            )
        self.clock = clock
        self.rate = float(rate)
        self.max_running = max_running
        self.poll_interval = float(poll_interval)
        self._gate = asyncio.Semaphore(max_running)
        self._procs: set[asyncio.subprocess.Process] = set()
        self.running = 0
        self.peak_running = 0
        self.started = 0
        self.completed = 0
        self.killed = 0

    async def run(
        self,
        argv: Sequence[str],
        timeout_units: Optional[float],
        on_spawn: Optional[Callable[[int], None]] = None,
    ) -> ExecutionReport:
        """Run *argv* to completion; kill it past *timeout_units*.

        ``on_spawn`` is called with the child's PID immediately after
        the fork — before any polling — so the caller can journal the
        spawn durably while the child is guaranteed still alive.
        """
        async with self._gate:
            self.running += 1
            self.peak_running = max(self.peak_running, self.running)
            self.started += 1
            started_at = self.clock.now
            # journaling is the caller's job via on_spawn below: the spawn
            # intent needs the child's PID, which only exists post-fork
            proc = await asyncio.create_subprocess_exec(  # repro: noqa WAL001  # PID known only after fork; on_spawn journals it immediately
                *argv,
                stdout=asyncio.subprocess.DEVNULL,
                stderr=asyncio.subprocess.DEVNULL,
            )
            self._procs.add(proc)
            if on_spawn is not None:
                on_spawn(proc.pid)
            killed = False
            try:
                waiter = asyncio.ensure_future(proc.wait())
                try:
                    while True:
                        try:
                            await asyncio.wait_for(
                                asyncio.shield(waiter), timeout=self.poll_interval
                            )
                            break  # child exited
                        except asyncio.TimeoutError:
                            pass  # poll tick: check the watchdog below
                        if (
                            not killed
                            and timeout_units is not None
                            and self.clock.now - started_at >= timeout_units
                        ):
                            proc.kill()
                            killed = True
                            self.killed += 1
                finally:
                    if not waiter.done():
                        waiter.cancel()
            finally:
                self._procs.discard(proc)
                self.running -= 1
            self.completed += 1
            return ExecutionReport(
                returncode=proc.returncode,
                killed=killed,
                started_at=started_at,
                ended_at=self.clock.now,
            )

    def kill_all(self) -> int:
        """Kill every live child (drain-grace expiry); returns the count.

        The polling loops observe the exits and settle each task through
        the normal failure path — this only delivers the signal.
        """
        count = 0
        for proc in list(self._procs):
            if proc.returncode is None:
                proc.kill()
                count += 1
        return count

    def __repr__(self) -> str:
        return (
            f"<SubprocessExecutor running={self.running}/{self.max_running} "
            f"started={self.started} killed={self.killed}>"
        )
