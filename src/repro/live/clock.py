"""Wall clocks for live mode.

The shared market/scheduling code reads time exclusively through the
:class:`~repro.sim.clock.Clock` protocol.  In simulation the clock is a
:class:`~repro.sim.clock.SimClock` view over the DES kernel; in live
mode it is a :class:`WallClock` — monotonic wall time rescaled into the
market's time units — so the *same* admission, heuristic, and
settlement arithmetic runs against real time without modification.

Scaling: the paper's experiments speak in abstract time units (mean
runtime 300, slack threshold 180, ...).  Running those literally on the
wall clock would make every task minutes long, so the wall clock takes a
``rate`` — time units per wall-clock second.  ``rate=60`` makes one
wall second worth one simulated minute; a 300-unit task then occupies a
node for 5 real seconds.  All market quantities (quotes, slack,
contracts, value decay) stay in units; only the subprocess executor
converts to seconds at the boundary (``units / rate``).

:class:`FrozenClock` is the test double: a clock that moves only when
told to, letting unit tests pin "now" while exercising the exact live
code paths.
"""

from __future__ import annotations

import math
import time

from repro.errors import LiveServiceError


class WallClock:
    """Monotonic wall time in market time units.

    ``now`` is ``(monotonic − epoch) × rate`` where the epoch is frozen
    at construction: time starts at 0.0 when the service boots, mirroring
    the simulator's convention, and never goes backwards (monotonic
    source, no NTP steps).

    Parameters
    ----------
    rate:
        Time units per wall-clock second (> 0, finite).  1.0 means one
        unit is one second; larger values accelerate the market.
    start:
        Market time at construction (default 0.0).  Crash recovery
        resumes the clock from the last journaled timestamp so recovered
        time continues the pre-crash timeline — contracts signed before
        the crash can still settle (settlement must not precede
        signing), and the stitched journal stays monotonic.
    """

    __slots__ = ("rate", "start", "_epoch")

    def __init__(self, rate: float = 1.0, start: float = 0.0) -> None:
        if not math.isfinite(rate) or rate <= 0:
            raise LiveServiceError(f"clock rate must be finite and > 0, got {rate!r}")
        if not math.isfinite(start) or start < 0:
            raise LiveServiceError(
                f"clock start must be finite and >= 0, got {start!r}"
            )
        self.rate = float(rate)
        self.start = float(start)
        self._epoch = time.monotonic()

    @property
    def now(self) -> float:
        """Current time in market units since service start."""
        return self.start + (time.monotonic() - self._epoch) * self.rate

    def to_seconds(self, units: float) -> float:
        """Convert a duration in market units to wall-clock seconds."""
        return units / self.rate

    def to_units(self, seconds: float) -> float:
        """Convert a wall-clock duration in seconds to market units."""
        return seconds * self.rate

    def __repr__(self) -> str:
        return f"<WallClock rate={self.rate:g} now={self.now:.3f}>"


class FrozenClock:
    """A manually-advanced clock for tests and benchmarks.

    Satisfies the :class:`~repro.sim.clock.Clock` protocol with a plain
    settable attribute; ``advance`` enforces monotonicity the way the
    real sources do.
    """

    __slots__ = ("now",)

    def __init__(self, start: float = 0.0) -> None:
        if not math.isfinite(start):
            raise LiveServiceError(f"clock start must be finite, got {start!r}")
        self.now = float(start)

    def advance(self, delta: float) -> float:
        """Move time forward by *delta* units; returns the new now."""
        if not math.isfinite(delta) or delta < 0:
            raise LiveServiceError(f"clock advance must be >= 0, got {delta!r}")
        self.now += delta
        return self.now

    def __repr__(self) -> str:
        return f"<FrozenClock now={self.now:g}>"
