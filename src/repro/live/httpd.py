"""Minimal stdlib HTTP/1.1 front end for the live service.

Built directly on :func:`asyncio.start_server` — no web framework, no
new dependencies.  One connection, one request, one JSON response
(``Connection: close``); the CLI-and-curl audience needs nothing more,
and the transport stays small enough to audit in one sitting.

Routes::

    POST /bids          submit one bid or {"bids": [...]} — negotiated
                        synchronously, returns outcome(s)
    GET  /tasks         every contracted task's status document
    GET  /tasks/<id>    one task's status document
    GET  /status        service/broker/site counters
    GET  /metrics       observability snapshot + windowed rates; served
                        as Prometheus text when the client sends
                        ``Accept: text/plain``, JSON otherwise
    GET  /healthz       liveness probe

All request handling runs on the service's event loop, so handlers may
touch service state without locks.
"""

from __future__ import annotations

import asyncio
import json

from typing import Optional

from repro.live.api import (
    ApiError,
    parse_bid_body,
    parse_idempotency_key,
    task_status_doc,
)
from repro.live.service import LiveService
from repro.obs.prom import PROMETHEUS_CONTENT_TYPE, prometheus_text

#: Largest accepted request body, bytes.
MAX_BODY = 1 << 20

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _PlainText(str):
    """Marker: a route payload already rendered as Prometheus text."""


def _response(
    status: int, payload: object, headers: Optional[dict[str, str]] = None
) -> bytes:
    if isinstance(payload, _PlainText):
        body = payload.encode("utf-8")
        content_type = PROMETHEUS_CONTENT_TYPE
    else:
        body = json.dumps(payload).encode("utf-8")
        content_type = "application/json"
    reason = _REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
    )
    for name, value in (headers or {}).items():
        head += f"{name}: {value}\r\n"
    head += "Connection: close\r\n\r\n"
    return head.encode("ascii") + body


def _format_retry_after(seconds: float) -> str:
    """Render a Retry-After value: integer when whole, else the float.

    Sub-second hints are non-standard HTTP but this is a closed loop —
    :mod:`repro.live.client` parses floats, and tests want sub-second
    backoff.
    """
    return str(int(seconds)) if float(seconds).is_integer() else f"{seconds:g}"


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, bytes, str, Optional[str]]:
    """Parse the request line, headers, and body; raises ApiError."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError) as exc:
        raise ApiError(f"unreadable request: {exc}") from exc
    parts = request_line.decode("ascii", "replace").split()
    if len(parts) != 3:
        raise ApiError(f"malformed request line: {request_line[:80]!r}")
    method, path, _version = parts

    content_length = 0
    accept = ""
    idempotency_key: Optional[str] = None
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        header = name.strip().lower()
        if header == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError as exc:
                raise ApiError(f"bad Content-Length: {value.strip()!r}") from exc
        elif header == "accept":
            accept = value.strip()
        elif header == "idempotency-key":
            idempotency_key = value.strip()
    if content_length > MAX_BODY:
        raise ApiError(f"body too large ({content_length} bytes)", status=413)
    body = await reader.readexactly(content_length) if content_length else b""
    return method, path, body, accept, idempotency_key


def _route(
    service: LiveService,
    method: str,
    path: str,
    body: bytes,
    accept: str = "",
    idempotency_key: Optional[str] = None,
) -> tuple[int, object, dict[str, str]]:
    if method == "POST" and path == "/bids":
        key = parse_idempotency_key(idempotency_key)
        requests = parse_bid_body(body)
        doc, replayed = service.handle_bids(requests, idempotency_key=key)
        headers = {"Idempotency-Replayed": "true"} if replayed else {}
        return 200, doc, headers
    if method == "GET" and path == "/tasks":
        return 200, {"tasks": [task_status_doc(r) for r in service.task_records()]}, {}
    if method == "GET" and path.startswith("/tasks/"):
        raw = path[len("/tasks/") :]
        try:
            tid = int(raw)
        except ValueError:
            raise ApiError(f"task id must be an integer, got {raw!r}", status=404) from None
        record = service.record_of_task(tid)
        if record is None:
            raise ApiError(f"no such task: {tid}", status=404)
        return 200, task_status_doc(record), {}
    if method == "GET" and path == "/status":
        return 200, service.status(), {}
    if method == "GET" and path == "/metrics":
        snapshot = service.obs.snapshot() if service.obs is not None else {}
        rates = service.rate_snapshot()
        if "text/plain" in accept.lower():
            gauges = {f"service.{key}": value for key, value in rates.items()}
            # The obs snapshot nests instruments under "metrics" next to
            # runs/spans/profile sections; the exposition wants instruments only.
            instruments = snapshot.get("metrics", snapshot)
            return 200, _PlainText(prometheus_text(instruments, extra_gauges=gauges)), {}
        return 200, {"metrics": snapshot, "rates": rates}, {}
    if method == "GET" and path == "/healthz":
        return 200, {"ok": True}, {}
    if path in ("/bids", "/tasks", "/status", "/metrics", "/healthz") or path.startswith(
        "/tasks/"
    ):
        raise ApiError(f"{method} not allowed on {path}", status=405)
    raise ApiError(f"no such route: {path}", status=404)


async def _handle(
    service: LiveService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        headers: dict[str, str] = {}
        try:
            method, path, body, accept, idem = await _read_request(reader)
            # the fsync in this chain runs only under fsync=always — the
            # operator's explicit durability-over-latency choice, capped
            # by the serve_journal_overhead bench gate; interval-policy
            # syncs are offloaded to the thread pool (LiveService.start)
            status, payload, headers = _route(service, method, path, body, accept, idem)  # repro: noqa ASY001  # fsync=always is a deliberate bounded stall; interval is offloaded
        except ApiError as exc:
            status, payload = exc.status, {"error": str(exc)}
            if exc.retry_after is not None:
                headers["Retry-After"] = _format_retry_after(exc.retry_after)
        except asyncio.IncompleteReadError:
            return  # client hung up mid-request; nothing to answer
        except Exception as exc:  # defensive: never kill the server loop
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        writer.write(_response(status, payload, headers))
        await writer.drain()
    except ConnectionError:
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass


async def start_http(
    service: LiveService, host: str, port: int
) -> tuple[asyncio.AbstractServer, int]:
    """Bind the front end; returns the server and the actual port."""

    async def handler(reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        await _handle(service, reader, writer)

    server = await asyncio.start_server(handler, host=host, port=port)
    sockets = server.sockets
    assert sockets, "server bound no sockets"
    actual_port: int = sockets[0].getsockname()[1]
    return server, actual_port
