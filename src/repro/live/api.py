"""JSON wire format for the live service HTTP API.

One place defines what goes over the wire: bid-request validation on the
way in, record/status serialization on the way out.  The HTTP layer
(:mod:`repro.live.httpd`) does transport only; tests and the CI smoke
script assert against the key sets exported here rather than retyping
them.

A bid request is the paper's §6 tuple plus execution detail::

    {"runtime": 300, "value": 100, "decay": 0.5, "bound": 200,
     "client_id": "curl", "argv": ["sleep", "3"]}

``argv`` is optional — when omitted the executor runs a sleep lasting
the declared runtime (converted to wall seconds by the clock rate),
which is the honest default for a service whose contracts price
*duration*, not output.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import LiveServiceError

#: Wire-format version, reported by ``GET /status``.
API_VERSION = 1

#: Keys present in every task status document (``GET /tasks/<id>``).
#: The e2e test and the CI smoke script assert completion payloads
#: against this set — keep it in sync with :func:`task_status_doc`.
TASK_STATUS_KEYS = frozenset(
    {
        "task_id",
        "bid_id",
        "state",
        "site",
        "client_id",
        "submitted_at",
        "started_at",
        "completed_at",
        "promised_completion",
        "agreed_price",
        "price",
        "realized_yield",
        "restarts",
        "killed",
        "returncode",
    }
)


class ApiError(LiveServiceError):
    """A malformed or unserviceable API request.

    Carries the HTTP status the transport layer should answer with,
    plus an optional ``Retry-After`` hint (wall seconds) for the
    backpressure answers — 429 (shed at the queue watermark) and 503
    (draining) — that a well-behaved client turns into backoff.
    """

    def __init__(
        self,
        message: str,
        status: int = 400,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


#: Longest accepted ``Idempotency-Key`` header value.
MAX_IDEMPOTENCY_KEY = 256


def parse_idempotency_key(raw: Optional[str]) -> Optional[str]:
    """Validate an ``Idempotency-Key`` header value (None passes through)."""
    if raw is None:
        return None
    key = raw.strip()
    if not key:
        raise ApiError("Idempotency-Key must not be empty")
    if len(key) > MAX_IDEMPOTENCY_KEY:
        raise ApiError(
            f"Idempotency-Key longer than {MAX_IDEMPOTENCY_KEY} characters"
        )
    return key


@dataclass(frozen=True)
class BidRequest:
    """A validated bid submission, ready to become a ``TaskBid``."""

    runtime: float
    value: float
    decay: float
    bound: Optional[float]
    client_id: Optional[str]
    argv: Optional[tuple[str, ...]]


def _number(payload: dict, key: str, *, required: bool = True) -> Optional[float]:
    if key not in payload or payload[key] is None:
        if required:
            raise ApiError(f"bid field {key!r} is required")
        return None
    raw = payload[key]
    if isinstance(raw, bool) or not isinstance(raw, (int, float)):
        raise ApiError(f"bid field {key!r} must be a number, got {raw!r}")
    value = float(raw)
    if not math.isfinite(value):
        raise ApiError(f"bid field {key!r} must be finite, got {raw!r}")
    return value


def parse_bid(payload: object) -> BidRequest:
    """Validate one JSON bid object into a :class:`BidRequest`."""
    if not isinstance(payload, dict):
        raise ApiError(f"bid must be a JSON object, got {type(payload).__name__}")
    known = {"runtime", "value", "decay", "bound", "demand", "client_id", "argv"}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ApiError(f"unknown bid fields: {unknown}")

    runtime = _number(payload, "runtime")
    assert runtime is not None
    if runtime <= 0:
        raise ApiError(f"bid runtime must be > 0, got {runtime!r}")
    value = _number(payload, "value")
    assert value is not None
    decay = _number(payload, "decay")
    assert decay is not None
    if decay < 0:
        raise ApiError(f"bid decay must be >= 0, got {decay!r}")
    bound = _number(payload, "bound", required=False)
    if bound is not None and bound < 0:
        raise ApiError(f"bid bound must be >= 0, got {bound!r}")

    demand = payload.get("demand", 1)
    if isinstance(demand, bool) or not isinstance(demand, int) or demand != 1:
        # slack admission projects single-node candidate schedules; the
        # live service quotes through it, so only demand=1 is servable
        raise ApiError(f"live bids support demand=1 only, got {demand!r}")

    client_id = payload.get("client_id")
    if client_id is not None and not isinstance(client_id, str):
        raise ApiError(f"client_id must be a string, got {client_id!r}")

    argv_raw = payload.get("argv")
    argv: Optional[tuple[str, ...]] = None
    if argv_raw is not None:
        if (
            not isinstance(argv_raw, list)
            or not argv_raw
            or not all(isinstance(a, str) for a in argv_raw)
        ):
            raise ApiError("argv must be a non-empty list of strings")
        argv = tuple(argv_raw)

    return BidRequest(
        runtime=runtime,
        value=value,
        decay=decay,
        bound=bound,
        client_id=client_id,
        argv=argv,
    )


def parse_bid_body(body: bytes) -> list[BidRequest]:
    """Parse a ``POST /bids`` body: one bid object or ``{"bids": [...]}``."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ApiError(f"request body is not valid JSON: {exc}") from exc
    if isinstance(payload, dict) and "bids" in payload:
        batch = payload["bids"]
        if not isinstance(batch, list) or not batch:
            raise ApiError('"bids" must be a non-empty list')
        return [parse_bid(item) for item in batch]
    return [parse_bid(payload)]


# ----------------------------------------------------------------------
# Outbound documents
# ----------------------------------------------------------------------


def bid_result_doc(record) -> dict:
    """The ``POST /bids`` per-bid response: negotiation outcome."""
    doc: dict = {
        "bid_id": record.bid.bid_id,
        "accepted": record.accepted,
        "quotes": record.quotes,
    }
    if record.accepted:
        doc["task_id"] = record.task.tid
        doc["site"] = record.site_id
        doc["expected_completion"] = record.contract.promised_completion
        doc["price"] = record.contract.agreed_price
    else:
        doc["reason"] = record.reason
    return doc


def task_status_doc(record) -> dict:
    """The ``GET /tasks/<id>`` document (keys = ``TASK_STATUS_KEYS``)."""
    task = record.task
    contract = record.contract
    report = record.report
    return {
        "task_id": task.tid,
        "bid_id": record.bid.bid_id,
        "state": task.state.value,
        "site": record.site_id,
        "client_id": record.bid.client_id,
        "submitted_at": record.submitted_at,
        "started_at": task.first_start,
        "completed_at": task.completion,
        "promised_completion": contract.promised_completion,
        "agreed_price": contract.agreed_price,
        "price": contract.actual_price,
        "realized_yield": task.realized_yield,
        "restarts": task.restarts,
        "killed": report.killed if report is not None else False,
        "returncode": report.returncode if report is not None else None,
    }
