"""Crash recovery: replay the write-ahead journal, settle the wreckage.

A SIGKILLed (or power-cut) live service leaves three kinds of debris:

* **Orphaned subprocesses** — children reparented to init, still
  burning CPU for contracts nobody will settle.  Every spawn was
  journaled (``intent`` record, action ``spawn``) with its PID and
  ``argv[0]``, so recovery can find and kill them.
* **Open contracts** — awards with no settlement on the record.  The
  market's conservation law (every contract settles exactly once) must
  hold over the *stitched* journal, so recovery rebuilds each open
  contract and abandons it at the value-function floor
  (:meth:`~repro.tasks.contract.Contract.settle_abandoned`).
* **A half-served dedup table** — journaled ``response`` intents carry
  the idempotency key and the exact response document, so a client
  retrying across the crash still gets the original bytes back.

The split is plan/apply: :func:`plan_recovery` is a pure function of
the parsed recording (no clock, no syscalls — this module is
timestamp-passive under lint rule OBS002, so every timestamp arrives as
a parameter), while :func:`apply_recovery` executes the plan against a
freshly built service, journaling each step as ``recovery`` records
onto the same journal, and returns once intake can resume.
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import LiveServiceError
from repro.obs.flight import Recording
from repro.tasks.bid import ServerBid, TaskBid, reserve_bid_ids
from repro.tasks.contract import Contract, reserve_contract_ids
from repro.tasks.task import reserve_task_ids


@dataclass(frozen=True)
class OrphanProcess:
    """A journaled spawn whose contract never settled."""

    pid: int
    argv0: Optional[str]
    site_id: Optional[str]
    task_tid: Optional[int]
    contract_id: Optional[int]


@dataclass(frozen=True)
class OpenContract:
    """An award on the record with no matching settlement."""

    contract_id: int
    bid_id: int
    site_id: str
    task_tid: Optional[int]
    signed_at: float
    agreed_price: float
    promised_completion: float
    # the client bid's terms, replayed from its ``bid`` record
    runtime: float
    value: float
    decay: float
    bound: Optional[float]
    client_id: Optional[str]
    released_at: Optional[float]


@dataclass
class SiteBooks:
    """Pre-crash totals for one site, to be carried into the restart."""

    revenue: float = 0.0
    contracts: int = 0
    quotes_issued: int = 0
    quotes_declined: int = 0


@dataclass
class RecoveryPlan:
    """Everything :func:`apply_recovery` needs, derived from the journal."""

    resume_at: float
    next_seq: int
    next_bid_id: int
    next_contract_id: int
    next_task_tid: int
    open_contracts: list[OpenContract] = field(default_factory=list)
    orphans: list[OrphanProcess] = field(default_factory=list)
    responses: dict[str, object] = field(default_factory=dict)
    books: dict[str, SiteBooks] = field(default_factory=dict)


def plan_recovery(recording: Recording) -> RecoveryPlan:
    """Derive a :class:`RecoveryPlan` from a parsed pre-crash journal.

    Pure over the recording: reads no clock, touches no process state.
    Raises :class:`~repro.errors.LiveServiceError` when the journal is
    internally inconsistent (an award referencing a bid that was never
    journaled — the write-ahead ordering makes that impossible short of
    journal corruption).
    """
    if recording.clock != "wall":
        raise LiveServiceError(
            f"can only recover a live (wall-clock) journal, got {recording.clock!r}"
        )
    resume_at = 0.0
    max_seq = 0
    max_bid = -1
    max_contract = -1
    max_tid = -1
    bids: dict[int, dict] = {}
    awards: dict[int, dict] = {}
    settled: set[int] = set()
    spawns: dict[int, dict] = {}  # pid -> latest spawn intent
    responses: dict[str, object] = {}
    books: dict[str, SiteBooks] = {}

    def site_books(site_id: str) -> SiteBooks:
        return books.setdefault(site_id, SiteBooks())

    for event in recording.events:
        resume_at = max(resume_at, float(event.get("t", 0.0)))
        max_seq = max(max_seq, int(event.get("seq", 0)))
        kind = event["kind"]
        if kind == "bid":
            bids[event["bid_id"]] = event
            max_bid = max(max_bid, int(event["bid_id"]))
        elif kind == "site":
            site_books(event["site_id"])
        elif kind == "quote":
            if event.get("verdict") == "issued":
                site_books(event["site_id"]).quotes_issued += 1
            else:
                site_books(event["site_id"]).quotes_declined += 1
        elif kind == "award":
            awards[event["contract_id"]] = event
            max_contract = max(max_contract, int(event["contract_id"]))
            max_bid = max(max_bid, int(event["bid_id"]))
            if event.get("task_tid") is not None:
                max_tid = max(max_tid, int(event["task_tid"]))
            site_books(event["site_id"]).contracts += 1
        elif kind == "settlement":
            settled.add(event["contract_id"])
            site_books(event["site_id"]).revenue += float(event["price"])
        elif kind == "intent":
            action = event.get("action")
            if action == "spawn" and event.get("pid") is not None:
                spawns[int(event["pid"])] = event
            elif action == "response" and event.get("idempotency_key"):
                responses[str(event["idempotency_key"])] = event.get("response")
            elif action == "accept" and event.get("bid_id") is not None:
                max_bid = max(max_bid, int(event["bid_id"]))

    open_contracts: list[OpenContract] = []
    for contract_id, award in sorted(awards.items()):
        if contract_id in settled:
            continue
        bid = bids.get(award["bid_id"])
        if bid is None:
            raise LiveServiceError(
                f"journal corrupt: award for contract {contract_id} references "
                f"bid {award['bid_id']} with no bid record"
            )
        open_contracts.append(
            OpenContract(
                contract_id=int(contract_id),
                bid_id=int(award["bid_id"]),
                site_id=str(award["site_id"]),
                task_tid=award.get("task_tid"),
                signed_at=float(award["t"]),
                agreed_price=float(award["agreed_price"]),
                promised_completion=float(award["promised_completion"]),
                runtime=float(bid["runtime"]),
                value=float(bid["value"]),
                decay=float(bid["decay"]),
                bound=bid.get("bound"),
                client_id=bid.get("client_id"),
                released_at=bid.get("released_at"),
            )
        )

    open_ids = {oc.contract_id for oc in open_contracts}
    orphans = [
        OrphanProcess(
            pid=int(spawn["pid"]),
            argv0=spawn.get("argv0"),
            site_id=spawn.get("site_id"),
            task_tid=spawn.get("task_tid"),
            contract_id=spawn.get("contract_id"),
        )
        for _, spawn in sorted(spawns.items())
        if spawn.get("contract_id") in open_ids
    ]

    return RecoveryPlan(
        resume_at=resume_at,
        next_seq=max_seq,
        next_bid_id=max_bid + 1,
        next_contract_id=max_contract + 1,
        next_task_tid=max_tid + 1,
        open_contracts=open_contracts,
        orphans=orphans,
        responses=responses,
        books=books,
    )


def _pid_matches(pid: int, argv0: Optional[str]) -> bool:
    """Best-effort guard against PID reuse before sending SIGKILL.

    Where ``/proc`` exposes the command line, require ``argv[0]`` to
    match the journaled one; a recycled PID running something else is
    left alone.  On platforms without ``/proc`` the check passes — the
    kill then relies on the journal being recent.
    """
    cmdline_path = f"/proc/{pid}/cmdline"
    if argv0 is None or not os.path.exists(cmdline_path):
        return True
    try:
        with open(cmdline_path, "rb") as handle:
            first = handle.read().split(b"\0", 1)[0].decode("utf-8", "replace")
    except OSError:
        return False  # racing the exit: it is already gone
    return first == argv0


def kill_orphans(orphans: list[OrphanProcess]) -> list[OrphanProcess]:
    """SIGKILL every still-alive orphan; returns the ones actually killed.

    Tolerates already-dead PIDs (``ProcessLookupError``) and refuses to
    signal a PID whose command line no longer matches the journal.
    """
    killed: list[OrphanProcess] = []
    for orphan in orphans:
        if not _pid_matches(orphan.pid, orphan.argv0):
            continue
        try:
            os.kill(orphan.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            continue
        killed.append(orphan)
    return killed


def rebuild_contract(oc: OpenContract) -> Contract:
    """Reconstruct a pre-crash contract from its journal records."""
    bid = TaskBid(
        runtime=oc.runtime,
        value=oc.value,
        decay=oc.decay,
        bound=oc.bound,
        client_id=oc.client_id,
        released_at=oc.released_at,
        bid_id=oc.bid_id,
    )
    server_bid = ServerBid(
        site_id=oc.site_id,
        bid_id=oc.bid_id,
        expected_completion=oc.promised_completion,
        expected_price=oc.agreed_price,
        expected_slack=0.0,
    )
    contract = Contract(bid, server_bid, signed_at=oc.signed_at)
    # __init__ drew a fresh id; restore the journaled identity so the
    # stitched settlement matches its award
    contract.contract_id = oc.contract_id
    contract.task_tid = oc.task_tid
    return contract


def apply_recovery(service, plan: RecoveryPlan, now: float) -> int:
    """Execute *plan* against a freshly built service at time *now*.

    Order matters: orphans die first (nothing may mutate contract state
    while we settle it), then open contracts settle as abandonments,
    then the books and dedup table are seeded, and finally the id
    counters are reserved past everything on the record.  Each step is
    journaled as a ``recovery`` record; returns the number of contracts
    re-settled.
    """
    flight = service.flight
    if flight is not None:
        flight.recovery(
            now,
            "begin",
            open_contracts=len(plan.open_contracts),
            orphans=len(plan.orphans),
            responses=len(plan.responses),
        )

    killed = kill_orphans(plan.orphans)
    if flight is not None:
        for orphan in plan.orphans:
            flight.recovery(
                now,
                "kill",
                pid=orphan.pid,
                site_id=orphan.site_id,
                task_tid=orphan.task_tid,
                contract_id=orphan.contract_id,
                killed=orphan in killed,
            )

    resettled = 0
    for oc in plan.open_contracts:
        contract = rebuild_contract(oc)
        release = oc.released_at if oc.released_at is not None else oc.signed_at
        price = contract.settle_abandoned(now, release=release)
        if oc.site_id in plan.books:
            plan.books[oc.site_id].revenue += price
        if flight is not None:
            flight.recovery(
                now,
                "resettle",
                contract_id=oc.contract_id,
                bid_id=oc.bid_id,
                site_id=oc.site_id,
                price=price,
            )
            flight.settlement(now, contract, "abandoned")
        resettled += 1

    for site in service.sites:
        carried = plan.books.get(site.site_id)
        if carried is not None:
            site.carry_books(
                revenue=carried.revenue,
                contracts=carried.contracts,
                quotes_issued=carried.quotes_issued,
                quotes_declined=carried.quotes_declined,
            )
    for key, doc in plan.responses.items():
        service.restore_response(key, doc)

    reserve_bid_ids(plan.next_bid_id)
    reserve_contract_ids(plan.next_contract_id)
    reserve_task_ids(plan.next_task_tid)

    if flight is not None:
        flight.recovery(
            now,
            "resume",
            resettled=resettled,
            killed=len(killed),
            next_bid_id=plan.next_bid_id,
            next_contract_id=plan.next_contract_id,
        )
    return resettled
