"""A live task-service site: MarketSite's wall-clock twin.

The negotiation surface is identical — ``quote``/``award`` duck-type
:class:`~repro.market.sites.MarketSite`, so the unmodified
:class:`~repro.market.broker.Broker` negotiates over live sites — and
the *decision machinery is shared, not reimplemented*: quoting calls the
same :class:`~repro.site.admission.SlackAdmission` (which reads this
site's ``clock``/``pool``/``heuristic``/``processors``, exactly the
attributes the sim engine exposes), dispatch ranks the queue with the
same heuristic ``scores``, and settlement evaluates the same contract
value functions.  Only *execution* differs: where the sim engine
schedules a completion event, the live site hands the task to the
subprocess executor and settles on whatever actually happens —
completion, crash, or timeout kill.

Failure accounting mirrors the fault layer's requeue-from-scratch
policy: a failed run requeues with its full runtime restored, up to
``max_restarts`` times; past that the contract is breached — at the
value-function floor when bounded (the simulator's exact semantics), or
via :meth:`~repro.tasks.contract.Contract.settle_abandoned` when
unbounded (a live-only outcome: subprocesses can die in ways the
fault-free simulator never models).
"""

from __future__ import annotations

import math
from typing import Callable, Optional

import numpy as np

from repro.errors import MarketError
from repro.live.config import LiveSiteSpec
from repro.live.executor import ExecutionReport, SubprocessExecutor, sleep_argv
from repro.market.pricing import BidValuePricing, PricingPolicy
from repro.obs.flight import FlightRecorder
from repro.scheduling.pool import PendingPool
from repro.scheduling.registry import make_heuristic
from repro.sim.clock import Clock
from repro.site.accounting import YieldLedger
from repro.site.admission import SlackAdmission
from repro.site.processors import ProcessorPool
from repro.tasks.bid import ServerBid, TaskBid
from repro.tasks.contract import Contract
from repro.tasks.task import Task


class LiveSite:
    """One seller executing real subprocesses.

    Parameters
    ----------
    clock:
        The live clock (market units) shared with the service.
    spec:
        Capacity and policy knobs (:class:`~repro.live.config.LiveSiteSpec`).
    executor:
        The subprocess executor; its ``max_running`` should equal the
        spec's ``slots`` so the semaphore backstops the scheduler.
    timeout_factor:
        Watchdog deadline as a multiple of the task's declared runtime
        (units); 0 disables the kill.
    max_restarts:
        Failed-run requeues before the contract is breached.
    """

    def __init__(
        self,
        clock: Clock,
        spec: LiveSiteSpec,
        executor: SubprocessExecutor,
        timeout_factor: float = 10.0,
        max_restarts: int = 1,
        pricing: Optional[PricingPolicy] = None,
        obs=None,
        flight: Optional[FlightRecorder] = None,
    ) -> None:
        self.clock = clock
        self.site_id = spec.site_id
        self.executor = executor
        self.heuristic = make_heuristic(spec.heuristic, **dict(spec.heuristic_params))
        self.admission = SlackAdmission(
            threshold=spec.threshold, discount_rate=spec.discount_rate
        )
        self.pricing = pricing if pricing is not None else BidValuePricing()
        self.pool = PendingPool()
        self.processors = ProcessorPool(spec.slots)
        self.ledger = YieldLedger()
        self.obs = obs
        #: optional FlightRecorder receiving quote/settlement events
        #: (wall-clock domain; same schema as the sim recorder)
        self.flight = flight
        self.timeout_factor = float(timeout_factor)
        self.max_restarts = int(max_restarts)
        self._contract_of: dict[int, Contract] = {}  # task tid -> contract
        self._argv_of: dict[int, tuple[str, ...]] = {}
        self._report_of: dict[int, ExecutionReport] = {}
        self.contracts: list[Contract] = []
        #: callbacks invoked as fn(contract, task) after each settlement
        self.settlement_listeners: list = []
        #: called after every slot release / requeue so the service can
        #: pump its dispatch loop
        self.on_slot_free: Optional[Callable[[], None]] = None
        self.revenue = 0.0
        self.quotes_issued = 0
        self.quotes_declined = 0
        #: contracts settled before a crash, carried in by recovery so
        #: the site summary reconciles over the stitched journal
        self.carried_contracts = 0

    # ------------------------------------------------------------------
    # Negotiation surface (Broker-compatible, mirrors MarketSite)
    # ------------------------------------------------------------------
    def quote(self, bid: TaskBid) -> Optional[ServerBid]:
        """Evaluate *bid* against the live candidate schedule."""
        probe = self._task_for(bid)
        decision = self.admission.evaluate(self, probe)
        if not decision.accept:
            self.quotes_declined += 1
            if self.flight is not None:
                self.flight.quote(self.clock.now, self.site_id, bid, decision, None)
            return None
        self.quotes_issued += 1
        server_bid = ServerBid(
            site_id=self.site_id,
            bid_id=bid.bid_id,
            expected_completion=decision.expected_completion,
            expected_price=self.pricing.quote(bid, decision),
            expected_slack=decision.slack,
        )
        if self.flight is not None:
            self.flight.quote(self.clock.now, self.site_id, bid, decision, server_bid)
        return server_bid

    def award(self, bid: TaskBid, server_bid: ServerBid) -> Contract:
        """Form the contract and enqueue the task for real execution."""
        if server_bid.site_id != self.site_id:
            raise MarketError(
                f"server bid for site {server_bid.site_id!r} awarded to {self.site_id!r}"
            )
        now = self.clock.now
        contract = Contract(bid, server_bid, signed_at=now)
        task = self._task_for(bid)
        contract.task_tid = task.tid
        self._contract_of[task.tid] = contract
        self.contracts.append(contract)
        # mirror the engine's forced-submission path (admission was
        # already exercised at quote time)
        task.submit()
        self.ledger.note_submission(task, now)
        if self.obs is not None:
            self.obs.task_submitted(task, now)
        task.accept()
        self.pool.add(task)
        self.ledger.note_accept(task)
        if self.obs is not None:
            self.obs.task_admitted(task, None, now)
            self._publish_depth(now)
        return contract

    def _task_for(self, bid: TaskBid) -> Task:
        arrival = bid.released_at if bid.released_at is not None else self.clock.now
        if arrival > self.clock.now:
            raise MarketError(
                f"bid {bid.bid_id} released in the future ({arrival} > {self.clock.now})"
            )
        return Task(
            arrival=arrival,
            runtime=bid.runtime,
            vf=bid.value_function(),
            demand=bid.demand,
        )

    def set_argv(self, task_tid: int, argv: tuple[str, ...]) -> None:
        """Attach the command line the executor should run for a task."""
        self._argv_of[task_tid] = argv

    # ------------------------------------------------------------------
    # Dispatch (the engine's scheduling pass, one task at a time)
    # ------------------------------------------------------------------
    def next_dispatch(self) -> Optional[Task]:
        """Remove and return the best queued task if a slot is free.

        Same selection as the sim engine's fast path: highest heuristic
        score wins (all live tasks are single-node, so no backfilling
        pass is needed).
        """
        if not self.pool or self.processors.free_count < 1:
            return None
        scores = self.heuristic.scores(self.pool.columns(), self.clock.now)
        return self.pool.remove_at(int(np.argmax(scores)))

    def begin(self, task: Task) -> None:
        """Claim a slot and start *task* — synchronously.

        The dispatch loop calls this *before* handing :meth:`execute` to
        the event loop: the slot must be claimed at dequeue time, or the
        loop would dequeue more tasks than there are free nodes while
        the first execution coroutine is still waiting to be scheduled.
        """
        now = self.clock.now
        self.processors.assign(task, now, now + task.estimated_remaining)
        task.start(now)
        if self.obs is not None:
            self.obs.task_started(task, now)
            self._publish_depth(now)

    async def execute(self, task: Task) -> None:
        """Run a :meth:`begin`-started *task* as a subprocess and settle it."""
        argv = self._argv_of.get(
            task.tid, sleep_argv(task.remaining / self.executor.rate)
        )
        timeout = (
            self.timeout_factor * task.estimate if self.timeout_factor > 0 else None
        )
        # the spawn-intent and settlement journal writes below block only
        # under fsync=always (the operator's explicit write-ahead
        # strictness, gated by the serve_journal_overhead bench);
        # interval-policy syncs run on the thread pool (LiveService.start)
        report = await self.executor.run(
            argv, timeout, on_spawn=lambda pid: self._note_spawn(task, argv, pid)  # repro: noqa ASY001  # fsync=always is deliberate write-ahead strictness; interval is offloaded
        )
        self._report_of[task.tid] = report
        self._on_exit(task, report)  # repro: noqa ASY001  # fsync=always is deliberate write-ahead strictness; interval is offloaded

    def _note_spawn(self, task: Task, argv: tuple[str, ...], pid: int) -> None:
        """Journal a spawn intent: the PID (plus argv[0] to guard against
        PID reuse) lets crash recovery find and kill orphaned children."""
        if self.flight is None:
            return
        contract = self._contract_of.get(task.tid)
        self.flight.intent(
            self.clock.now,
            "spawn",
            site_id=self.site_id,
            task_tid=task.tid,
            contract_id=contract.contract_id if contract is not None else None,
            pid=pid,
            argv0=argv[0],
        )

    def _on_exit(self, task: Task, report: ExecutionReport) -> None:
        now = self.clock.now
        self.processors.vacate(task, now)
        if report.ok:
            task.complete(now)
            self.ledger.note_completion(task)
            if self.obs is not None:
                self.obs.task_completed(task, now)
            self._settle(task)
        elif task.restarts < self.max_restarts:
            # requeue-from-scratch, the fault layer's default policy:
            # all progress is lost, the declared runtime is restored
            self.ledger.note_crash(task)
            task.crash(now, remaining=task.runtime, estimated_remaining=task.estimate)
            self.ledger.note_restart(task)
            self.pool.add(task)
            if self.obs is not None:
                self.obs.task_restarted(task, now, requeued=True)
        else:
            self.ledger.note_crash(task)
            self._breach(task, now)
            self._settle(task)
        if self.obs is not None:
            self._publish_depth(now)
        if self.on_slot_free is not None:
            self.on_slot_free()

    def _breach(self, task: Task, now: float) -> None:
        """Abandon a terminally failed task (restart budget exhausted)."""
        if math.isfinite(task.vf.floor):
            task.cancel(now)  # realized yield = floor, the sim's breach
        else:
            task.abort(now)  # live-only: unbounded penalties accrue
        assert task.realized_yield is not None
        penalty = max(0.0, -task.realized_yield)
        self.ledger.note_breach(task, penalty)
        if self.obs is not None:
            self.obs.task_breached(task, now, penalty)

    def abandon_queued(self) -> int:
        """Breach every still-queued task (forced shutdown); count them."""
        count = 0
        now = self.clock.now
        for task in self.pool.tasks:
            self.pool.remove(task)
            self.ledger.note_crash(task)
            self._breach(task, now)
            self._settle(task)
            count += 1
        return count

    def _settle(self, task: Task) -> None:
        contract = self._contract_of.pop(task.tid, None)
        if contract is None:
            return
        now = self.clock.now
        # settlement is self-journaling: the settlement record right
        # below is the journal entry, and recovery re-settles any
        # contract whose settlement never reached the journal — the
        # idempotent-redo half of the WAL contract (see
        # repro.live.recovery), so no separate intent precedes the act
        if task.state.value == "cancelled":
            if math.isfinite(contract.vf.floor):
                price = contract.settle_breach(now)  # repro: noqa WAL001  # self-journaling: settlement record follows; recovery re-settles on crash
                outcome = "breached"
            else:
                price = contract.settle_abandoned(now, release=task.arrival)  # repro: noqa WAL001  # self-journaling: settlement record follows; recovery re-settles on crash
                outcome = "abandoned"
        else:
            assert task.completion is not None
            price = contract.settle(task.completion, release=task.arrival)  # repro: noqa WAL001  # self-journaling: settlement record follows; recovery re-settles on crash
            outcome = "completed"
        self.revenue += price
        if self.flight is not None:
            self.flight.settlement(now, contract, outcome)
        for listener in self.settlement_listeners:
            listener(contract, task)

    def _publish_depth(self, now: float) -> None:
        if self.obs is not None:
            self.obs.queue_depth(len(self.pool), self.processors.busy_count, now)

    # ------------------------------------------------------------------
    @property
    def queued_count(self) -> int:
        return len(self.pool)

    @property
    def running_count(self) -> int:
        return self.processors.busy_count

    @property
    def idle(self) -> bool:
        """No queued or running work (drain completion test)."""
        return not self.pool and self.processors.busy_count == 0

    @property
    def open_contracts(self) -> int:
        return len(self._contract_of)

    @property
    def contracts_total(self) -> int:
        """Awards across the site's whole journal, pre-crash included."""
        return self.carried_contracts + len(self.contracts)

    def carry_books(
        self,
        revenue: float,
        contracts: int,
        quotes_issued: int,
        quotes_declined: int,
    ) -> None:
        """Seed the books with pre-crash totals (recovery only).

        The drain-time site summary must reconcile against *every*
        settlement and award in the stitched journal, not just the ones
        this process made — so recovery folds the replayed history into
        the counters before intake resumes.
        """
        self.revenue += float(revenue)
        self.carried_contracts += int(contracts)
        self.quotes_issued += int(quotes_issued)
        self.quotes_declined += int(quotes_declined)

    def report_of(self, task_tid: int) -> Optional[ExecutionReport]:
        return self._report_of.get(task_tid)

    def __repr__(self) -> str:
        return (
            f"<LiveSite {self.site_id!r} queued={len(self.pool)} "
            f"running={self.processors.busy_count} revenue={self.revenue:.1f}>"
        )
