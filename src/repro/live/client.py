"""A retrying stdlib client for the live service HTTP API.

The durability contract has two halves.  The server half (journal +
recovery) guarantees every *accepted* bid settles exactly once; the
client half lives here: retry safely until an answer arrives.  Safety
comes from the ``Idempotency-Key`` header — :meth:`LiveClient.submit_bid`
stamps every submission with a fresh key, so a retry after a dropped
connection, a 429 shed, a 503 drain, or even a server crash-and-recover
replays the *original* response instead of buying a second award.

Retry cadence reuses the fault layer's discipline
(:class:`~repro.faults.messages.MessageFaults`): retry *k* (0-based)
waits ``base_delay * backoff**k``, bounded by an overall deadline.  A
``Retry-After`` header on a backpressure answer overrides the computed
delay — the server knows its queue better than the client's exponential
guess.

Nothing beyond the standard library::

    from repro.live.client import LiveClient

    client = LiveClient("http://127.0.0.1:8080")
    result = client.submit_bid({"runtime": 300, "value": 100, "decay": 0.5})
    print(result.doc["accepted"], result.replayed)
"""

from __future__ import annotations

import json
import os
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import LiveServiceError

#: HTTP statuses worth retrying: backpressure answers (which carry
#: Retry-After) and transient server-side failures.
RETRYABLE_STATUSES = frozenset({429, 502, 503, 504})


class ClientGaveUp(LiveServiceError):
    """Retries exhausted (attempt budget or deadline) without an answer."""

    def __init__(self, message: str, last_status: Optional[int] = None) -> None:
        super().__init__(message)
        self.last_status = last_status


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with an overall deadline.

    Parameters mirror :class:`~repro.faults.messages.MessageFaults`:
    ``backoff`` is the exponential base, retry *k* (0-based) waits
    ``base_delay * backoff**k`` seconds.  ``deadline`` caps the whole
    conversation (wall seconds, connection time included); ``attempts``
    caps the number of tries regardless of time left.
    """

    attempts: int = 5
    base_delay: float = 0.1
    backoff: float = 2.0
    deadline: float = 30.0
    request_timeout: float = 10.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise LiveServiceError(f"attempts must be >= 1, got {self.attempts!r}")
        if not self.base_delay > 0:
            raise LiveServiceError(
                f"base_delay must be > 0, got {self.base_delay!r}"
            )
        if not self.backoff >= 1.0:
            raise LiveServiceError(f"backoff must be >= 1, got {self.backoff!r}")
        if not self.deadline > 0:
            raise LiveServiceError(f"deadline must be > 0, got {self.deadline!r}")
        if not self.request_timeout > 0:
            raise LiveServiceError(
                f"request_timeout must be > 0, got {self.request_timeout!r}"
            )

    def retry_delay(self, attempt: int) -> float:
        """Backoff before retry *attempt* (0-based), in wall seconds."""
        return self.base_delay * self.backoff**attempt


@dataclass(frozen=True)
class ClientResult:
    """One answered request: parsed document plus transport detail."""

    status: int
    doc: object
    body: bytes
    replayed: bool
    attempts: int


def fresh_idempotency_key() -> str:
    """A random 128-bit key, unique per logical submission."""
    return os.urandom(16).hex()


class LiveClient:
    """Deadline-bounded retrying client over ``urllib`` (stdlib only).

    Parameters
    ----------
    base_url:
        Service root, e.g. ``http://127.0.0.1:8080``.
    policy:
        Retry cadence; defaults to :class:`RetryPolicy`'s defaults.
    sleep, clock:
        Injection points for tests — the backoff sleeper and the
        monotonic deadline source.
    """

    def __init__(
        self,
        base_url: str,
        policy: Optional[RetryPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.policy = policy if policy is not None else RetryPolicy()
        self._sleep = sleep
        self._clock = clock

    # ------------------------------------------------------------------
    def submit_bid(
        self,
        payload: dict,
        idempotency_key: Optional[str] = None,
    ) -> ClientResult:
        """POST one bid (or a ``{"bids": [...]}`` batch), retrying safely.

        A key is generated when none is supplied, so every retry of this
        call — including across a server crash and recovery — replays
        the same logical submission.
        """
        key = idempotency_key if idempotency_key is not None else fresh_idempotency_key()
        return self.request("POST", "/bids", body=payload, idempotency_key=key)

    def status(self) -> ClientResult:
        return self.request("GET", "/status")

    def request(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        idempotency_key: Optional[str] = None,
    ) -> ClientResult:
        """Issue one request under the retry policy; returns the answer.

        Retries on connection failures and :data:`RETRYABLE_STATUSES`;
        any other status is returned (or raised as the final answer) —
        a 400 is the caller's bug, not transience.
        """
        deadline = self._clock() + self.policy.deadline
        last_status: Optional[int] = None
        last_error = "no attempt made"
        for attempt in range(self.policy.attempts):
            if attempt > 0:
                delay = min(self._retry_after or self.policy.retry_delay(attempt - 1),
                            max(0.0, deadline - self._clock()))
                if delay > 0:
                    self._sleep(delay)
            if self._clock() >= deadline:
                break
            try:
                result = self._once(method, path, body, idempotency_key, attempt + 1)
            except (urllib.error.URLError, ConnectionError, TimeoutError) as exc:
                self._retry_after = None
                last_error = str(exc)
                continue
            if result.status in RETRYABLE_STATUSES:
                last_status = result.status
                last_error = f"HTTP {result.status}"
                continue
            return result
        raise ClientGaveUp(
            f"{method} {self.base_url}{path} gave up after {self.policy.attempts} "
            f"attempt(s) within {self.policy.deadline:g}s: {last_error}",
            last_status=last_status,
        )

    # set per attempt: the server's Retry-After hint, if any
    _retry_after: Optional[float] = None

    def _once(
        self,
        method: str,
        path: str,
        body: Optional[dict],
        idempotency_key: Optional[str],
        attempts: int,
    ) -> ClientResult:
        data = json.dumps(body).encode("utf-8") if body is not None else None
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, method=method
        )
        if data is not None:
            request.add_header("Content-Type", "application/json")
        if idempotency_key is not None:
            request.add_header("Idempotency-Key", idempotency_key)
        self._retry_after = None
        try:
            with urllib.request.urlopen(
                request, timeout=self.policy.request_timeout
            ) as response:
                raw = response.read()
                headers = response.headers
                status = response.status
        except urllib.error.HTTPError as error:
            raw = error.read()
            headers = error.headers
            status = error.code
        retry_after = headers.get("Retry-After")
        if retry_after is not None:
            try:
                self._retry_after = max(0.0, float(retry_after))
            except ValueError:
                self._retry_after = None
        try:
            doc = json.loads(raw.decode("utf-8")) if raw else None
        except (UnicodeDecodeError, json.JSONDecodeError):
            doc = None
        return ClientResult(
            status=status,
            doc=doc,
            body=raw,
            replayed=headers.get("Idempotency-Replayed", "").lower() == "true",
            attempts=attempts,
        )
