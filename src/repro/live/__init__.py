"""Live service mode: the market on the wall clock.

The sim reproduces the paper; this package *runs* it.  The same broker,
admission control, scheduling heuristics, and contract settlement that
drive the discrete-event experiments are hosted on an asyncio event
loop against real time — tasks execute as actual subprocesses, bids
arrive over HTTP, and every quantity (slack, quotes, prices, penalties)
is computed by the shared code, not a re-implementation.

Modules
-------
clock
    :class:`WallClock` (monotonic wall time in market units) and
    :class:`FrozenClock` (the test double), both satisfying the shared
    :class:`~repro.sim.clock.Clock` protocol.
config
    Frozen, validated service configuration.
api
    JSON wire format: bid validation in, status documents out.
executor
    Real subprocess execution — concurrency throttle, status polling,
    timeout kill.
site
    :class:`LiveSite` — ``MarketSite``'s wall-clock twin; duck-types
    the broker's ``quote``/``award`` surface over shared admission and
    scheduling.
service
    :class:`LiveService` — broker + sites + the dispatch loop.
httpd
    The stdlib asyncio HTTP/1.1 front end.
serve
    The ``repro serve`` CLI entry point with graceful SIGTERM drain.
"""

from repro.live.api import API_VERSION, ApiError, BidRequest, parse_bid, parse_bid_body
from repro.live.clock import FrozenClock, WallClock
from repro.live.config import LiveConfig, LiveSiteSpec, default_config
from repro.live.executor import ExecutionReport, SubprocessExecutor
from repro.live.service import LiveRecord, LiveService
from repro.live.site import LiveSite

__all__ = [
    "API_VERSION",
    "ApiError",
    "BidRequest",
    "ExecutionReport",
    "FrozenClock",
    "LiveConfig",
    "LiveRecord",
    "LiveService",
    "LiveSite",
    "LiveSiteSpec",
    "SubprocessExecutor",
    "WallClock",
    "default_config",
    "parse_bid",
    "parse_bid_body",
]
