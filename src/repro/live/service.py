"""The live service: broker + sites + dispatch loop on one event loop.

:class:`LiveService` is the asyncio hub the HTTP front end talks to.
It owns the live clock, the sites, and the unmodified
:class:`~repro.market.broker.Broker`; a single dispatch loop moves
queued tasks onto free slots as subprocess executions complete.

Lifecycle::

    service = LiveService(config, obs=obs)
    await service.start()          # dispatch loop running
    service.submit_bids(parsed)    # from the HTTP layer, any number
    ...
    await service.drain()          # 503 new bids, finish in-flight work
    await service.stop()           # cancel the loop

Draining honours ``config.drain_grace`` (wall seconds): past the grace
period, still-running subprocesses are killed and still-queued tasks
abandoned, so shutdown always terminates with every contract settled.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass
from typing import Optional

from repro.errors import LiveServiceError
from repro.live.api import ApiError, BidRequest, bid_result_doc
from repro.live.clock import WallClock
from repro.live.config import LiveConfig
from repro.live.executor import ExecutionReport, SubprocessExecutor
from repro.live.site import LiveSite
from repro.market.broker import Broker, best_surplus, best_yield, earliest_completion
from repro.obs.flight import FlightRecorder
from repro.obs.prom import RateWindow
from repro.sim.clock import Clock
from repro.tasks.bid import TaskBid
from repro.tasks.contract import Contract
from repro.tasks.task import Task

#: Broker selection strategies by CLI/config name.
STRATEGIES = {
    "best-yield": best_yield,
    "best-surplus": best_surplus,
    "earliest": earliest_completion,
}


class IdempotencyTable:
    """Bounded FIFO map from ``Idempotency-Key`` to the stored response.

    A retried ``POST /bids`` carrying a key already in the table gets
    the original response document back instead of a second
    negotiation — the "exactly one award per logical request" half of
    the durability contract.  The table is bounded: past ``capacity``
    distinct keys the oldest entry is evicted, so a sufficiently stale
    retry degrades to a fresh negotiation rather than unbounded memory.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise LiveServiceError(f"capacity must be >= 1, got {capacity!r}")
        self.capacity = capacity
        self._entries: dict[str, object] = {}
        self.hits = 0

    def get(self, key: str) -> Optional[object]:
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
        return entry

    def put(self, key: str, response: object) -> None:
        if key in self._entries:
            return  # first response wins; retries must replay it
        while len(self._entries) >= self.capacity:
            self._entries.pop(next(iter(self._entries)))
        self._entries[key] = response

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries


@dataclass
class LiveRecord:
    """Everything the API can say about one submitted bid."""

    bid: TaskBid
    submitted_at: float
    accepted: bool
    quotes: int
    reason: Optional[str] = None
    site_id: Optional[str] = None
    task: Optional[Task] = None
    contract: Optional[Contract] = None

    @property
    def report(self) -> Optional[ExecutionReport]:
        return self._report

    _report: Optional[ExecutionReport] = None


class LiveService:
    """Hosts the market on the wall clock."""

    def __init__(
        self,
        config: LiveConfig,
        obs=None,
        clock: Optional[Clock] = None,
        flight: Optional[FlightRecorder] = None,
    ) -> None:
        try:
            strategy = STRATEGIES[config.strategy]
        except KeyError:
            raise LiveServiceError(
                f"unknown strategy {config.strategy!r}; options: "
                f"{sorted(STRATEGIES)}"
            ) from None
        self.config = config
        self.clock: Clock = clock if clock is not None else WallClock(config.rate)
        self.obs = obs
        self.flight = flight
        #: windowed operational rates for /metrics (wall-second domain)
        self.rates = RateWindow()
        self.sites: list[LiveSite] = []
        for spec in config.sites:
            executor = SubprocessExecutor(
                self.clock,
                rate=config.rate,
                max_running=spec.slots,
                poll_interval=config.poll_interval,
            )
            site = LiveSite(
                self.clock,
                spec,
                executor,
                timeout_factor=config.timeout_factor,
                max_restarts=config.max_restarts,
                obs=obs,
                flight=flight,
            )
            site.on_slot_free = self._kick
            site.settlement_listeners.append(self._note_settlement)
            self.sites.append(site)
        self.broker = Broker(self.sites, strategy=strategy, vickrey=config.vickrey)
        self.broker.flight = flight
        if flight is not None:
            for site, spec in zip(self.sites, config.sites):
                flight.site_open(
                    self.clock.now,
                    site.site_id,
                    capacity=spec.slots,
                    heuristic=spec.heuristic,
                    threshold=spec.threshold,
                    discount_rate=spec.discount_rate,
                )
        self.records: list[LiveRecord] = []
        self._record_of_task: dict[int, LiveRecord] = {}
        self._negotiation_ids = itertools.count()
        self.idempotency = IdempotencyTable(config.idempotency_capacity)
        #: bids refused at the queue watermark (429 answers)
        self.sheds = 0
        self.draining = False
        #: exceptions raised by execution tasks (executor bugs, not task
        #: failures — those settle normally); surfaced via GET /status
        self.errors: list[str] = []
        self._wake = asyncio.Event()
        self._loop_task: Optional[asyncio.Task] = None
        self._inflight: set[asyncio.Task] = set()
        self._started_at = self.clock.now

    # ------------------------------------------------------------------
    # Intake (called by the HTTP layer, on the event loop thread)
    # ------------------------------------------------------------------
    @property
    def queued_total(self) -> int:
        """Tasks awaiting dispatch across all sites (the shed signal)."""
        return sum(site.queued_count for site in self.sites)

    def _check_intake(self, client_id: Optional[str] = None) -> None:
        """Admission control: draining → 503, over the watermark → 429.

        Checked once per request (not per bid within a batch) so a
        batch is admitted or refused atomically — a mid-batch refusal
        would discard negotiated awards from the response and make the
        client's retry double-award them.
        """
        if self.draining:
            raise ApiError(
                "service is draining; not accepting bids",
                status=503,
                retry_after=self.config.retry_after_s,
            )
        watermark = self.config.queue_watermark
        if watermark and self.queued_total >= watermark:
            self.sheds += 1
            if self.flight is not None:
                self.flight.shed(
                    self.clock.now,
                    queued=self.queued_total,
                    watermark=watermark,
                    retry_after_s=self.config.retry_after_s,
                    client_id=client_id,
                )
            raise ApiError(
                f"queue depth {self.queued_total} at watermark {watermark}; "
                "retry later",
                status=429,
                retry_after=self.config.retry_after_s,
            )

    def submit_bid(self, request: BidRequest) -> LiveRecord:
        """Negotiate one bid with every site; returns its record."""
        self._check_intake(request.client_id)
        return self._negotiate_bid(request)

    def _negotiate_bid(self, request: BidRequest) -> LiveRecord:
        now = self.clock.now
        bid = TaskBid(
            runtime=request.runtime,
            value=request.value,
            decay=request.decay,
            bound=request.bound,
            client_id=request.client_id,
            # anchor value decay at intake: negotiation and queueing
            # latency count as delay, the sim's brokered semantics
            released_at=now,
        )
        if self.flight is not None:
            # write-ahead: the intent to negotiate is durable before any
            # market state changes, so recovery can tell "accepted but
            # never awarded" from "never arrived"
            self.flight.intent(
                now,
                "accept",
                bid_id=bid.bid_id,
                client_id=bid.client_id,
                runtime=bid.runtime,
                value=bid.value,
                decay=bid.decay,
                bound=bid.bound,
            )
        nid = next(self._negotiation_ids)
        if self.obs is not None:
            self.obs.negotiation_started(nid, now)
        negotiation_started = time.perf_counter()
        outcome = self.broker.negotiate(bid)
        self.rates.note_roundtrip((time.perf_counter() - negotiation_started) * 1e6)
        self.rates.note_bid(self._wall_now(), outcome.accepted)
        if self.obs is not None:
            quoted = {q.site_id for q in outcome.quotes}
            for site in self.sites:
                self.obs.negotiation_quoted(
                    nid, site.site_id, declined=site.site_id not in quoted,
                    now=self.clock.now,
                )
        record = LiveRecord(
            bid=bid,
            submitted_at=now,
            accepted=outcome.accepted,
            quotes=len(outcome.quotes),
        )
        if outcome.accepted:
            assert outcome.contract is not None and outcome.winner is not None
            record.site_id = outcome.winner.site_id
            record.contract = outcome.contract
            site = self._site(outcome.winner.site_id)
            task = self._task_of_contract(site, outcome.contract)
            record.task = task
            self._record_of_task[task.tid] = record
            if request.argv is not None:
                site.set_argv(task.tid, request.argv)
        else:
            record.reason = (
                "no site quoted" if not outcome.quotes else "no quote selected"
            )
        if self.obs is not None:
            self.obs.negotiation_finished(
                nid,
                self.clock.now,
                contracted=outcome.accepted,
                task_id=record.task.tid if record.task is not None else None,
                site_id=record.site_id,
            )
        self.records.append(record)
        self._kick()
        return record

    def submit_bids(self, requests: list[BidRequest]) -> list[LiveRecord]:
        self._check_intake(requests[0].client_id if requests else None)
        return [self._negotiate_bid(r) for r in requests]

    def handle_bids(
        self,
        requests: list[BidRequest],
        idempotency_key: Optional[str] = None,
    ) -> tuple[object, bool]:
        """Process a ``POST /bids`` request with idempotent replay.

        Returns ``(response_doc, replayed)``.  A request replaying a
        known ``Idempotency-Key`` gets the stored response document
        back — no second negotiation, so a retried award stays one
        award.  Fresh keyed responses are journaled (``intent`` record,
        action ``response``) before the reply leaves the socket, so the
        dedup table survives a crash.
        """
        if idempotency_key is not None:
            stored = self.idempotency.get(idempotency_key)
            if stored is not None:
                return stored, True
        records = self.submit_bids(requests)
        docs = [bid_result_doc(r) for r in records]
        doc: object = docs[0] if len(docs) == 1 else {"results": docs}
        if idempotency_key is not None:
            self.idempotency.put(idempotency_key, doc)
            if self.flight is not None:
                self.flight.intent(
                    self.clock.now,
                    "response",
                    idempotency_key=idempotency_key,
                    response=doc,
                )
        return doc, False

    def restore_response(self, idempotency_key: str, doc: object) -> None:
        """Re-seed the dedup table from a journaled response (recovery)."""
        self.idempotency.put(idempotency_key, doc)

    def _wall_now(self) -> float:
        """Wall seconds since the clock epoch (market units / rate)."""
        return self.clock.now / self.config.rate

    def _note_settlement(self, contract: Contract, task: Task) -> None:
        self.rates.note_settlement(self._wall_now(), contract.actual_price)

    def _site(self, site_id: str) -> LiveSite:
        for site in self.sites:
            if site.site_id == site_id:
                return site
        raise LiveServiceError(f"no such site: {site_id!r}")

    @staticmethod
    def _task_of_contract(site: LiveSite, contract: Contract) -> Task:
        for task in site.pool:
            if task.tid == contract.task_tid:
                return task
        raise LiveServiceError(
            f"awarded task {contract.task_tid} not queued at {site.site_id!r}"
        )

    # ------------------------------------------------------------------
    # Dispatch loop
    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._loop_task is not None:
            raise LiveServiceError("service already started")
        if self.flight is not None and self.flight.sink is not None:
            # interval-policy journal fsyncs run on the default thread
            # pool so the durability cadence never stalls the dispatch
            # loop (fsync=always stays synchronous: that policy trades
            # latency for write-ahead strictness on purpose)
            loop = asyncio.get_running_loop()
            self.flight.sink.set_offload(
                lambda fn: loop.run_in_executor(None, fn)
            )
        self._loop_task = asyncio.create_task(self._dispatch_loop())

    def _kick(self) -> None:
        self._wake.set()

    async def _dispatch_loop(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            for site in self.sites:
                while (task := site.next_dispatch()) is not None:
                    # claim the slot synchronously; the subprocess part
                    # runs concurrently (see LiveSite.begin)
                    site.begin(task)
                    run = asyncio.create_task(site.execute(task))
                    self._inflight.add(run)
                    run.add_done_callback(self._run_finished)

    def _run_finished(self, run: asyncio.Task) -> None:
        self._inflight.discard(run)
        if not run.cancelled() and run.exception() is not None:
            # surface executor bugs instead of silently dropping the
            # slot; the record's task stays open, visible via GET /tasks
            self.errors.append(repr(run.exception()))

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    @property
    def idle(self) -> bool:
        return all(site.idle for site in self.sites) and not self._inflight

    async def drain(self) -> None:
        """Finish in-flight work; force-settle whatever outlives grace."""
        self.draining = True
        self._kick()
        grace = self.config.drain_grace
        deadline = asyncio.get_running_loop().time() + grace
        while not self.idle:
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                break
            if self._inflight:
                await asyncio.wait(
                    set(self._inflight),
                    timeout=min(remaining, 0.5),
                    return_when=asyncio.FIRST_COMPLETED,
                )
            else:
                await asyncio.sleep(min(remaining, self.config.poll_interval))
            self._kick()
        if not self.idle:
            # grace expired: halt dispatch first — a killed child's exit
            # frees a slot and kicks the loop, which would otherwise
            # start queued work we are about to abandon — then kill
            # running children (their polling loops settle the breaches)
            # and abandon everything still queued
            await self.stop()
            for site in self.sites:
                site.executor.kill_all()
            if self._inflight:
                await asyncio.wait(set(self._inflight))
            for site in self.sites:
                # settlement journal writes during forced abandonment:
                # drain is shutdown — stalling the loop here delays no
                # client, and the records must be durable before exit
                site.abandon_queued()  # repro: noqa ASY001  # shutdown path; durability beats latency once draining
        if self.flight is not None:
            # closing books per site: the audit's reconciliation anchor
            for site in self.sites:
                self.flight.site_summary(  # repro: noqa ASY001  # shutdown path; summary must hit the journal before exit
                    self.clock.now,
                    site.site_id,
                    revenue=site.revenue,
                    contracts=site.contracts_total,
                    quotes_issued=site.quotes_issued,
                    quotes_declined=site.quotes_declined,
                )

    async def stop(self) -> None:
        # detach before awaiting: a concurrent stop() arriving while we
        # sit in the await below must see _loop_task already cleared, or
        # it would cancel/await a task the first caller is consuming
        task, self._loop_task = self._loop_task, None
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass

    # ------------------------------------------------------------------
    # Introspection (GET /status, /tasks)
    # ------------------------------------------------------------------
    def record_of_task(self, task_tid: int) -> Optional[LiveRecord]:
        record = self._record_of_task.get(task_tid)
        if record is not None and record.task is not None:
            record._report = self._site(record.site_id).report_of(task_tid)  # type: ignore[arg-type]
        return record

    def task_records(self) -> list[LiveRecord]:
        return [
            self.record_of_task(tid) or record
            for tid, record in self._record_of_task.items()
        ]

    def rate_snapshot(self) -> dict:
        """Windowed operational rates, evaluated at the current wall time."""
        return self.rates.snapshot(self._wall_now())

    def status(self) -> dict:
        from repro.live.api import API_VERSION

        states: dict[str, int] = {}
        for record in self._record_of_task.values():
            if record.task is not None:
                key = record.task.state.value
                states[key] = states.get(key, 0) + 1
        return {
            "service": "repro.live",
            "api": API_VERSION,
            "now": self.clock.now,
            "rate": self.config.rate,
            "draining": self.draining,
            "errors": list(self.errors),
            "negotiations": self.broker.negotiations,
            "rejections": self.broker.rejections,
            "sheds": self.sheds,
            "queued": self.queued_total,
            "queue_watermark": self.config.queue_watermark,
            "idempotency": {
                "entries": len(self.idempotency),
                "hits": self.idempotency.hits,
                "capacity": self.idempotency.capacity,
            },
            "tasks": states,
            "revenue": sum(site.revenue for site in self.sites),
            "sites": [
                {
                    "site_id": site.site_id,
                    "slots": site.processors.count,
                    "queued": site.queued_count,
                    "running": site.running_count,
                    "revenue": site.revenue,
                    "quotes_issued": site.quotes_issued,
                    "quotes_declined": site.quotes_declined,
                    "peak_running": site.executor.peak_running,
                    "ledger": site.ledger.summary(),
                }
                for site in self.sites
            ],
        }
