"""Configuration for the live service.

Frozen dataclasses, validated at construction — the same style as the
experiment configs.  Everything is expressed in market time units
except the explicitly wall-clock knobs (``poll_interval``,
``drain_grace``), which are seconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import LiveServiceError

#: Heuristic parameters as a hashable tuple of (name, value) pairs so
#: site specs stay frozen/comparable; ``dict(spec.heuristic_params)``
#: at build time.
HeuristicParams = tuple[tuple[str, float], ...]


@dataclass(frozen=True)
class LiveSiteSpec:
    """One seller in the live market.

    Parameters mirror the sim-side ``MarketSite`` knobs that make sense
    on the wall clock: capacity, scheduling heuristic, slack threshold.
    """

    site_id: str = "live-0"
    slots: int = 2
    heuristic: str = "firstreward"
    heuristic_params: HeuristicParams = (("alpha", 0.3), ("discount_rate", 0.01))
    threshold: float = 180.0
    discount_rate: float = 0.01

    def __post_init__(self) -> None:
        if not self.site_id:
            raise LiveServiceError("site_id must be non-empty")
        if self.slots < 1:
            raise LiveServiceError(f"slots must be >= 1, got {self.slots!r}")
        if math.isnan(self.threshold):
            raise LiveServiceError("slack threshold must not be NaN")
        if not self.discount_rate >= 0:
            raise LiveServiceError(
                f"discount_rate must be >= 0, got {self.discount_rate!r}"
            )


@dataclass(frozen=True)
class LiveConfig:
    """Full service configuration for ``repro serve``."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port is printed and exported
    rate: float = 60.0  # time units per wall second
    sites: tuple[LiveSiteSpec, ...] = (LiveSiteSpec(),)
    strategy: str = "best-yield"
    vickrey: bool = False
    #: kill a subprocess once it has run for timeout_factor × the task's
    #: declared runtime (units); 0 disables the watchdog
    timeout_factor: float = 10.0
    #: crash/kill requeues before a task is abandoned
    max_restarts: int = 1
    #: executor poll cadence, wall seconds
    poll_interval: float = 0.05
    #: wall seconds to wait for in-flight work at shutdown before the
    #: remaining subprocesses are killed and their contracts abandoned
    drain_grace: float = 30.0
    #: refuse new bids with 429 once this many tasks are queued across
    #: all sites (0 disables shedding) — the backpressure valve that
    #: keeps the executor from saturating under overload
    queue_watermark: int = 0
    #: Retry-After hint (wall seconds) on 429 shed and 503 drain answers
    retry_after_s: float = 1.0
    #: most-recent Idempotency-Key responses retained for replay; the
    #: dedup table is bounded FIFO, so a retry older than this many
    #: distinct keys can no longer be deduplicated
    idempotency_capacity: int = 1024

    def __post_init__(self) -> None:
        if not 0 <= self.port <= 65535:
            raise LiveServiceError(f"port must be in [0, 65535], got {self.port!r}")
        if not math.isfinite(self.rate) or self.rate <= 0:
            raise LiveServiceError(f"rate must be finite and > 0, got {self.rate!r}")
        if not self.sites:
            raise LiveServiceError("at least one site spec is required")
        ids = [s.site_id for s in self.sites]
        if len(set(ids)) != len(ids):
            raise LiveServiceError(f"duplicate site ids: {ids}")
        if self.timeout_factor < 0:
            raise LiveServiceError(
                f"timeout_factor must be >= 0, got {self.timeout_factor!r}"
            )
        if self.max_restarts < 0:
            raise LiveServiceError(
                f"max_restarts must be >= 0, got {self.max_restarts!r}"
            )
        if not self.poll_interval > 0:
            raise LiveServiceError(
                f"poll_interval must be > 0, got {self.poll_interval!r}"
            )
        if self.drain_grace < 0:
            raise LiveServiceError(
                f"drain_grace must be >= 0, got {self.drain_grace!r}"
            )
        if self.queue_watermark < 0:
            raise LiveServiceError(
                f"queue_watermark must be >= 0, got {self.queue_watermark!r}"
            )
        if not self.retry_after_s > 0:
            raise LiveServiceError(
                f"retry_after_s must be > 0, got {self.retry_after_s!r}"
            )
        if self.idempotency_capacity < 1:
            raise LiveServiceError(
                f"idempotency_capacity must be >= 1, got {self.idempotency_capacity!r}"
            )


def default_config(**overrides) -> LiveConfig:
    """A LiveConfig with keyword overrides (test convenience)."""
    return LiveConfig(**overrides)
