"""``repro serve`` — run the market as a real service.

Boots a :class:`~repro.live.service.LiveService` plus the HTTP front
end on one asyncio loop, prints the bound address, and runs until
SIGTERM/SIGINT.  Shutdown is a graceful drain: new bids are refused
(503), in-flight subprocesses finish (bounded by ``--drain-grace``),
every contract settles, then the telemetry artifacts are written and a
final settlement summary is printed.

Try it::

    repro serve --port 8080 --rate 60 &
    curl -s localhost:8080/bids -d '{"runtime": 60, "value": 10, "decay": 0.1}'
    curl -s localhost:8080/status
    kill -TERM %1      # drains, settles, exits 0
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import sys

from repro.live.config import LiveConfig, LiveSiteSpec
from repro.live.httpd import start_http
from repro.live.service import STRATEGIES, LiveService


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the ``repro serve`` flag surface on *parser*."""
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="bind port (default 0 = pick an ephemeral port and print it)",
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=60.0,
        metavar="UNITS_PER_S",
        help="market time units per wall second (default %(default)s: one "
        "wall second is one simulated minute)",
    )
    parser.add_argument(
        "--sites", type=int, default=1, metavar="N", help="number of seller sites"
    )
    parser.add_argument(
        "--slots",
        type=int,
        default=2,
        metavar="N",
        help="max concurrently running subprocesses per site",
    )
    parser.add_argument(
        "--heuristic",
        default="firstreward",
        help="scheduling heuristic registry name (default %(default)s)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=180.0,
        help="slack admission threshold in time units (default %(default)s, "
        "the paper's Fig. 6 setting)",
    )
    parser.add_argument(
        "--strategy",
        choices=sorted(STRATEGIES),
        default="best-yield",
        help="broker quote-selection strategy",
    )
    parser.add_argument(
        "--timeout-factor",
        type=float,
        default=10.0,
        help="kill a subprocess past FACTOR x its declared runtime "
        "(0 disables; default %(default)s)",
    )
    parser.add_argument(
        "--max-restarts",
        type=int,
        default=1,
        help="failed-run requeues before a contract is breached",
    )
    parser.add_argument(
        "--drain-grace",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="wall seconds to wait for in-flight work at shutdown",
    )
    parser.add_argument(
        "--port-file",
        default=None,
        metavar="PATH",
        help="write the bound port number to PATH once listening "
        "(for scripts driving an ephemeral --port 0)",
    )
    parser.add_argument(
        "--flight-out",
        default=None,
        metavar="PATH",
        help="stream a flight recording (JSONL) of every market decision "
        "to PATH; feed it to `repro audit` / `repro replay` afterwards",
    )
    parser.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="write-ahead journal: a flight recording with a durable "
        "fsync policy (see --fsync) that also records intents before "
        "the service acts, enabling --recover after a crash",
    )
    parser.add_argument(
        "--fsync",
        choices=("always", "interval", "off"),
        default="interval",
        help="journal fsync policy (default %(default)s: sync every few "
        "records and at close)",
    )
    parser.add_argument(
        "--recover",
        default=None,
        metavar="JOURNAL",
        help="replay a crashed service's journal before opening intake: "
        "kill orphaned subprocesses, abandon-settle open contracts, "
        "restore the idempotency table, then append to the same journal",
    )
    parser.add_argument(
        "--queue-watermark",
        type=int,
        default=0,
        metavar="N",
        help="refuse new bids with 429 once N tasks are queued across "
        "all sites (0 disables shedding)",
    )
    parser.add_argument(
        "--retry-after",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="Retry-After hint sent with 429/503 answers",
    )


def config_from_args(args: argparse.Namespace) -> LiveConfig:
    if args.sites < 1:
        raise SystemExit(f"--sites must be >= 1, got {args.sites}")
    sites = tuple(
        LiveSiteSpec(
            site_id=f"live-{i}",
            slots=args.slots,
            heuristic=args.heuristic,
            threshold=args.threshold,
        )
        for i in range(args.sites)
    )
    return LiveConfig(
        host=args.host,
        port=args.port,
        rate=args.rate,
        sites=sites,
        strategy=args.strategy,
        timeout_factor=args.timeout_factor,
        max_restarts=args.max_restarts,
        drain_grace=args.drain_grace,
        queue_watermark=getattr(args, "queue_watermark", 0),
        retry_after_s=getattr(args, "retry_after", 1.0),
    )


def _make_obs(args):
    from repro.obs import MetricsRegistry, Observability

    return Observability(
        registry=MetricsRegistry(),
        spans=True,
        profiler=False,
    )


def _write_artifacts(obs, args) -> None:
    if getattr(args, "trace_out", None):
        from repro.obs import write_chrome_trace

        spans = obs.spans
        write_chrome_trace(
            spans.finished, args.trace_out, run_of=obs.run_of, dropped=spans.dropped
        )
        print(f"wrote {args.trace_out} ({len(spans)} spans)")
    if getattr(args, "metrics_out", None):
        directory = os.path.dirname(args.metrics_out)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(args.metrics_out, "w") as handle:
            json.dump(obs.snapshot(), handle, sort_keys=True, indent=1)
            handle.write("\n")
        print(f"wrote {args.metrics_out}")


async def _serve(config: LiveConfig, args: argparse.Namespace) -> int:
    from repro.obs import FlightRecorder, JournalSink, read_recording

    obs = _make_obs(args)
    obs.begin_run("live")

    recover_path = getattr(args, "recover", None)
    journal_path = getattr(args, "journal", None) or recover_path
    plan = None
    if recover_path:
        from repro.live.recovery import plan_recovery

        plan = plan_recovery(read_recording(recover_path))

    flight = None
    flight_path = None
    if journal_path:
        sink = JournalSink(
            journal_path,
            fsync=getattr(args, "fsync", "interval"),
            # recovery appends: post-crash records stitch onto the
            # pre-crash journal in one auditable file
            append=recover_path is not None and journal_path == recover_path,
        )
        # boot-time header write, before the server socket exists: no
        # client is waiting on this loop iteration yet
        flight = FlightRecorder(sink=sink, clock_domain="wall")  # repro: noqa ASY001  # boot-time header write; nothing is being served yet
        flight_path = journal_path
        if plan is not None:
            flight.seq = plan.next_seq
    elif getattr(args, "flight_out", None):
        flight = FlightRecorder(args.flight_out, clock_domain="wall")  # repro: noqa ASY001  # boot-time header write; nothing is being served yet
        flight_path = args.flight_out

    clock = None
    if plan is not None:
        from repro.live.clock import WallClock

        # resume market time from the last journaled instant so
        # pre-crash contracts can settle (never before their signing)
        clock = WallClock(config.rate, start=plan.resume_at)

    # site_open journal records during construction — still boot time,
    # before start_http binds the listening socket
    service = LiveService(config, obs=obs, clock=clock, flight=flight)  # repro: noqa ASY001  # boot-time site_open records; server not listening yet
    if plan is not None:
        from repro.live.recovery import apply_recovery

        resettled = apply_recovery(service, plan, now=service.clock.now)
        print(
            f"recovered {recover_path}: {resettled} contract(s) re-settled, "
            f"{len(plan.orphans)} orphan(s) addressed, "
            f"{len(plan.responses)} idempotent response(s) restored"
        )
        sys.stdout.flush()
    await service.start()
    server, port = await start_http(service, config.host, config.port)
    print(f"repro.live listening on http://{config.host}:{port} "
          f"(rate {config.rate:g} units/s, {len(config.sites)} site(s) "
          f"x {config.sites[0].slots} slot(s))")
    sys.stdout.flush()
    if args.port_file:
        with open(args.port_file, "w") as handle:
            handle.write(f"{port}\n")

    shutdown = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, shutdown.set)
    await shutdown.wait()

    # graceful drain: refuse new bids (503), keep answering status reads
    # while in-flight work completes, then settle everything and stop
    print("drain: finishing in-flight work "
          f"(grace {config.drain_grace:g}s)")
    sys.stdout.flush()
    await service.drain()
    server.close()
    await server.wait_closed()
    await service.stop()
    obs.end_run(service.clock.now)
    if flight is not None:
        # shutdown-time final sync: the HTTP server is closed and the
        # service drained — the loop has nothing left to serve
        flight.close()  # repro: noqa ASY001  # final sync after drain; no clients left to stall
        print(f"wrote {flight_path} ({len(flight.events)} flight records)")
    _write_artifacts(obs, args)

    status = service.status()
    settled = sum(1 for r in service.records if r.contract is not None)
    print(
        f"drained: {service.broker.negotiations} negotiation(s), "
        f"{settled} contract(s), revenue {status['revenue']:.2f}"
    )
    return 1 if service.errors else 0


def run_serve(args: argparse.Namespace) -> int:
    """Entry point for the ``repro serve`` subcommand."""
    config = config_from_args(args)
    return asyncio.run(_serve(config, args))
