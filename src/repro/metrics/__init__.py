"""Metrics: improvement computations, replication statistics, tables."""

from repro.metrics.compare import improvement_percent
from repro.metrics.stats import SeriesStats, mean_and_ci, summarize_replications
from repro.metrics.tables import format_table

__all__ = [
    "SeriesStats",
    "format_table",
    "improvement_percent",
    "mean_and_ci",
    "summarize_replications",
]
