"""Replication statistics: means and normal-approximation confidence intervals.

The experiment harness averages each point over several seeds; these
helpers report the spread so EXPERIMENTS.md can quote uncertainty.
(Implemented directly on NumPy — SciPy is available in dev environments
but not a runtime dependency.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

#: two-sided 95% normal quantile
_Z95 = 1.959963984540054


@dataclass(frozen=True)
class SeriesStats:
    """Mean and spread of one experiment point across replications."""

    mean: float
    std: float
    ci_half_width: float
    n: int

    @property
    def ci_low(self) -> float:
        return self.mean - self.ci_half_width

    @property
    def ci_high(self) -> float:
        return self.mean + self.ci_half_width

    def __str__(self) -> str:
        if self.n <= 1:
            return f"{self.mean:.4g}"
        return f"{self.mean:.4g} ± {self.ci_half_width:.2g}"


def mean_and_ci(values: Sequence[float]) -> SeriesStats:
    """Mean with a 95% normal-approximation CI on the mean."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("mean_and_ci requires at least one value")
    mean = float(arr.mean())
    if arr.size == 1:
        return SeriesStats(mean=mean, std=0.0, ci_half_width=0.0, n=1)
    std = float(arr.std(ddof=1))
    half = _Z95 * std / math.sqrt(arr.size)
    return SeriesStats(mean=mean, std=std, ci_half_width=half, n=int(arr.size))


def summarize_replications(rows: Sequence[dict], key: str, group_by: Sequence[str]) -> list[dict]:
    """Group replication rows and collapse *key* into SeriesStats.

    ``rows`` are flat dicts (one per seed per point); ``group_by`` names
    the point coordinates.  Returns one dict per point with the grouped
    coordinates plus ``{key: SeriesStats}``.
    """
    groups: dict[tuple, list[float]] = {}
    order: list[tuple] = []
    for row in rows:
        coords = tuple(row[g] for g in group_by)
        if coords not in groups:
            groups[coords] = []
            order.append(coords)
        groups[coords].append(float(row[key]))
    out = []
    for coords in order:
        entry = dict(zip(group_by, coords))
        entry[key] = mean_and_ci(groups[coords])
        out.append(entry)
    return out
