"""Plain-text table rendering for the CLI and benchmark output.

Each figure's harness prints the same series the paper plots; these
helpers render them as aligned monospace tables (the repo has no
plotting dependency by design).
"""

from __future__ import annotations

from typing import Any, Optional, Sequence


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (value != 0 and abs(value) < 0.01):
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def format_table(
    rows: Sequence[dict],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render dict-rows as an aligned table; column order preserved."""
    if not rows:
        return f"{title}\n(no data)" if title else "(no data)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[_fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(str(c)), *(len(r[i]) for r in cells)) for i, c in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for r in cells:
        lines.append("  ".join(v.rjust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)
