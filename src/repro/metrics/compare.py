"""Improvement metrics.

Every evaluation figure in the paper plots *percent improvement over a
baseline* (FirstPrice for Figs 3–5, no-admission-control for Fig 7).
"""

from __future__ import annotations

import math


def improvement_percent(value: float, baseline: float) -> float:
    """Percent improvement of *value* over *baseline*.

    Defined as ``100 · (value − baseline) / |baseline|`` so the sign is
    meaningful when the baseline is negative (unbounded-penalty overload
    drives baseline yields below zero): positive always means "earned
    more than the baseline".

    A zero baseline returns ``inf``/``-inf``/0 by the sign of the
    difference — callers plotting such series should prefer absolute
    yields, and the experiment harness flags this case.
    """
    diff = value - baseline
    if baseline == 0.0:
        if diff == 0.0:
            return 0.0
        return math.inf if diff > 0 else -math.inf
    return 100.0 * diff / abs(baseline)
