"""Figure 3 — Present Value vs FirstPrice across discount rates.

Paper: "Yield improvement for Present Value (PV) relative to FirstPrice
for variants of a task mix used in the Millennium study, with load
factor 1.  At discount rate 0 PV is equivalent to FirstPrice.  Yield
improves for modest increases in the discount rate along the x-axis.
The improvement is larger for workloads with a higher variance in task
value."

Configuration (calibration documented in DESIGN.md / EXPERIMENTS.md):
Millennium mix — normally distributed durations and session gaps, 256-job
burst sessions at load factor 1, uniform decay (horizon 2 mean runtimes),
penalties bounded at zero, preemption enabled.  The x-axis is the
discount rate **in percent** (the paper's axis); the PV heuristic takes
the fraction.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import FigureResult
from repro.experiments.parallel import CellExecutor, submit_mean_yield
from repro.metrics.compare import improvement_percent
from repro.workload.millennium import millennium_spec

DISCOUNT_PERCENTS = (0.001, 0.01, 0.1, 0.3, 1.0, 3.0, 10.0)
VALUE_SKEWS = (1.0, 1.5, 2.15, 4.0, 9.0)
SESSION_SIZE = 256
DURATION_CV = 0.5
DECAY_HORIZON = 2.0


def fig3_spec(value_skew: float, n_jobs: int = 5000, processors: int = 16):
    return millennium_spec(
        n_jobs=n_jobs,
        value_skew=value_skew,
        processors=processors,
        duration_cv=DURATION_CV,
        decay_horizon=DECAY_HORIZON,
        batch_size=SESSION_SIZE,
        penalty_bound=0.0,
    )


def run_fig3(
    n_jobs: int = 5000,
    seeds: Sequence[int] = (0, 1),
    discount_percents: Sequence[float] = DISCOUNT_PERCENTS,
    value_skews: Sequence[float] = VALUE_SKEWS,
    processors: int = 16,
    workers: Optional[int] = None,
) -> FigureResult:
    """Regenerate Figure 3's series.

    Rows: one per (value_skew, discount_pct) with the PV yield, the
    FirstPrice baseline yield, and the percent improvement.  Cells fan
    out over *workers* processes; the rows are identical at any count.
    """
    result = FigureResult(
        figure="fig3",
        title="PV yield improvement over FirstPrice vs discount rate (%)",
        notes=[
            f"millennium burst mix: sessions of {SESSION_SIZE}, load 1, "
            f"bounded at 0, preemption on, n={n_jobs}, seeds={list(seeds)}",
            "x-axis is the discount rate in percent, as in the paper",
        ],
    )
    with CellExecutor(workers) as ex:
        cells = {}
        for skew in value_skews:
            spec = fig3_spec(skew, n_jobs=n_jobs, processors=processors)
            cells[skew] = submit_mean_yield(
                ex, spec, ("firstprice", {}), seeds, preemption=True
            )
            for pct in discount_percents:
                cells[skew, pct] = submit_mean_yield(
                    ex,
                    spec,
                    ("pv", {"discount_rate": pct / 100.0}),
                    seeds,
                    preemption=True,
                )
        for skew in value_skews:
            baseline = cells[skew].result()
            for pct in discount_percents:
                pv = cells[skew, pct].result()
                result.rows.append(
                    {
                        "value_skew": skew,
                        "discount_pct": pct,
                        "pv_yield": pv,
                        "firstprice_yield": baseline,
                        "improvement_pct": improvement_percent(pv, baseline),
                    }
                )
    return result
