"""Shared experiment plumbing: result container and replication helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.errors import ExperimentError
from repro.metrics.tables import format_table
from repro.scheduling.base import SchedulingHeuristic
from repro.workload.spec import WorkloadSpec


@dataclass
class FigureResult:
    """Rows of one regenerated figure plus provenance notes."""

    figure: str
    title: str
    rows: list[dict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def table(self, columns: Optional[Sequence[str]] = None) -> str:
        header = f"{self.figure}: {self.title}"
        body = format_table(self.rows, columns=columns, title=header)
        if self.notes:
            body += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        return body

    def series(self, x: str, y: str, line: str) -> dict:
        """Group rows into ``{line_value: [(x, y), ...]}`` — the paper's
        lines-on-a-graph view, used by the shape checks."""
        out: dict = {}
        for row in self.rows:
            out.setdefault(row[line], []).append((row[x], row[y]))
        for key in out:
            out[key].sort()
        return out

    def column(self, name: str) -> list:
        return [row[name] for row in self.rows]

    def lookup(self, **coords) -> dict:
        """The unique row matching all coordinate equalities."""
        matches = [
            row for row in self.rows if all(row.get(k) == v for k, v in coords.items())
        ]
        if len(matches) != 1:
            raise ExperimentError(f"lookup{coords} matched {len(matches)} rows")
        return matches[0]


def mean_yield(
    spec: WorkloadSpec,
    heuristic_factory: Callable[[], SchedulingHeuristic],
    seeds: Sequence[int],
    metric: str = "total_yield",
    **site_kwargs,
) -> float:
    """Average a site metric over per-seed traces of *spec*.

    ``heuristic_factory`` is called per run so heuristics never share
    mutable state across replications.  Each seed runs the same
    :func:`repro.experiments.parallel.simulate_cell_metric` core the
    worker-process cells use, so this serial helper and the ``--workers``
    fan-out are numerically one code path.
    """
    from repro.experiments.parallel import simulate_cell_metric

    if not seeds:
        raise ExperimentError("at least one seed is required")
    values = [
        simulate_cell_metric(spec, heuristic_factory(), seed, metric, **site_kwargs)
        for seed in seeds
    ]
    return float(np.mean(values))
