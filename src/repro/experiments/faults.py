"""Faults experiment — yield vs node MTTF under fault injection.

Not a paper figure: the paper's evaluation assumes perfectly reliable
nodes.  This extension asks the natural follow-on question — how fast
does each pricing policy's yield erode as the cluster becomes less
reliable, and does risk-aware pricing (admission control + failure-aware
discounts) still pay off?

Two policies run over a common MTTF sweep:

``firstreward-ac``
    FirstReward(α) with slack admission control *plus* the
    ``repro.faults`` risk-pricing knobs: candidate scores discounted by
    P(node survives the RPT) and the required slack inflated per unit of
    believed RPT.  This is the "risk-aware" site.
``firstprice-noac``
    Plain FirstPrice with no admission control and no failure awareness
    — the "risk-oblivious" site the paper's Figure 6 also uses as its
    baseline.

Both share the workload trace and the per-node fault streams at each
(seed, MTTF) point — common random numbers, so the MTTF axis is a clean
coupling: shrinking MTTF scales the same uniform draws into strictly
earlier crashes.  Expected shape: every policy's yield decreases
monotonically as MTTF shrinks, and the risk-aware site dominates the
risk-oblivious one at every sampled MTTF.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import FigureResult
from repro.experiments.parallel import (
    CellExecutor,
    Descriptor,
    build_admission,
    build_heuristic,
    mean_rows_of,
)
from repro.faults.spec import FaultSpec
from repro.site.driver import simulate_site
from repro.workload.generator import generate_trace
from repro.workload.millennium import economy_spec

#: Sweep grid: mean time to failure per node, in the workload's time
#: units (mean task duration is 100).  Halving steps from "a crash or
#: two per run" down to "nodes fail several times per task".
MTTFS = (8000.0, 4000.0, 2000.0, 1000.0, 500.0, 250.0)
MTTR = 100.0
ALPHA = 0.2  # FirstReward risk/reward blend (tuned for the load below)
DISCOUNT_RATE = 0.01
SLACK_THRESHOLD = 180.0
SLACK_INFLATION = 0.25  # extra required slack per unit believed RPT
LOAD_FACTOR = 2.0
VALUE_SKEW = 3.0
DECAY_SKEW = 5.0

#: Per-policy fault-stat columns carried into the result rows.
_STAT_KEYS = ("crashes", "tasks_killed", "restarts", "work_lost", "downtime")


def _one_run(
    spec,
    heuristic: Descriptor,
    admission: Optional[Descriptor],
    faults: FaultSpec,
    seed: int,
) -> dict:
    """One (policy, mttf, seed) cell — picklable for worker fan-out."""
    trace = generate_trace(spec, seed=seed)
    result = simulate_site(
        trace,
        build_heuristic(heuristic),
        processors=spec.processors,
        admission=build_admission(admission),
        keep_records=False,
        faults=faults,
        fault_seed=seed,
    )
    row = {
        "total_yield": result.total_yield,
        "yield_rate": result.yield_rate,
    }
    stats = result.fault_stats.summary() if result.fault_stats else {}
    for key in _STAT_KEYS:
        row[key] = float(stats.get(key, 0.0))
    return row


def run_faults(
    n_jobs: int = 600,
    seeds: Sequence[int] = (0, 1),
    mttfs: Sequence[float] = MTTFS,
    alpha: float = ALPHA,
    mttr: float = MTTR,
    restart: str = "requeue",
    processors: int = 16,
    load_factor: float = LOAD_FACTOR,
    slack_threshold: float = SLACK_THRESHOLD,
    slack_inflation: float = SLACK_INFLATION,
    workers: Optional[int] = None,
) -> FigureResult:
    """Sweep MTTF; one row per (policy, mttf) averaged over *seeds*."""
    result = FigureResult(
        figure="faults",
        title="Total yield vs node MTTF: risk-aware vs risk-oblivious pricing",
        notes=[
            f"economy mix: value skew {VALUE_SKEW}, decay skew {DECAY_SKEW}, "
            f"unbounded penalties, load factor {load_factor:g}, "
            f"n={n_jobs}, seeds={list(seeds)}",
            f"faults: mttr={mttr:g}, restart={restart}, exponential TTF/TTR, "
            f"common random numbers across the MTTF axis",
            f"firstreward-ac: alpha={alpha:g}, slack threshold "
            f"{slack_threshold:g}, survival discount on, slack inflation "
            f"{slack_inflation:g}/unit RPT; firstprice-noac: no admission, "
            f"no failure awareness",
        ],
    )
    spec = economy_spec(
        n_jobs=n_jobs,
        value_skew=VALUE_SKEW,
        decay_skew=DECAY_SKEW,
        load_factor=load_factor,
        processors=processors,
        penalty_bound=None,
    )
    with CellExecutor(workers) as ex:
        cells = {}
        for mttf in mttfs:
            aware = FaultSpec(
                mttf=mttf,
                mttr=mttr,
                restart=restart,
                survival_discount=True,
                slack_inflation=slack_inflation,
            )
            oblivious = FaultSpec(mttf=mttf, mttr=mttr, restart=restart)
            for policy, faults, heuristic, admission in (
                (
                    "firstreward-ac",
                    aware,
                    ("firstreward", {"alpha": alpha, "discount_rate": DISCOUNT_RATE}),
                    (
                        "slack",
                        {
                            "threshold": slack_threshold,
                            "discount_rate": DISCOUNT_RATE,
                        },
                    ),
                ),
                ("firstprice-noac", oblivious, ("firstprice", {}), None),
            ):
                cells[mttf, policy] = mean_rows_of(
                    [
                        ex.submit(_one_run, spec, heuristic, admission, faults, seed)
                        for seed in seeds
                    ]
                )
        for mttf in mttfs:
            for policy in ("firstreward-ac", "firstprice-noac"):
                result.rows.append(
                    {"policy": policy, "mttf": mttf, **cells[mttf, policy].result()}
                )
    return result
