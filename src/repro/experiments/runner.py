"""Experiment registry and expected-shape checks.

The registry maps figure names to their run functions plus two canned
scales: ``quick`` (minutes of CPU, used by tests and default CLI runs)
and ``full`` (paper scale: 5000 jobs, multiple seeds).

The shape checks encode DESIGN.md §3's acceptance criteria — the
qualitative structure each figure must exhibit (who wins, where peaks
fall) independent of absolute magnitudes.  Benchmarks assert the robust
subset; the CLI reports all of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import ExperimentError

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.obs.instrument import Observability
from repro.experiments.common import FigureResult
from repro.experiments.faults import run_faults
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.resilience import run_resilience


@dataclass(frozen=True)
class ShapeCheck:
    """One qualitative acceptance criterion and its verdict."""

    name: str
    passed: bool
    detail: str
    robust: bool = True  # robust checks must hold even at quick scale

    def __str__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        tag = "" if self.robust else " (soft)"
        return f"[{mark}]{tag} {self.name}: {self.detail}"


# ----------------------------------------------------------------------
# Per-figure shape checks
# ----------------------------------------------------------------------

def _line_max(points: list[tuple]) -> tuple:
    return max(points, key=lambda p: p[1])


def check_fig3(res: FigureResult) -> list[ShapeCheck]:
    series = res.series("discount_pct", "improvement_pct", "value_skew")
    checks = []
    smallest_pct = min(x for pts in series.values() for x, _ in pts)
    at_zero = [abs(y) for pts in series.values() for x, y in pts if x == smallest_pct]
    checks.append(
        ShapeCheck(
            "pv-equals-firstprice-as-rate-vanishes",
            max(at_zero) < 1.5,
            f"|improvement| at {smallest_pct}%: max {max(at_zero):.2f}%",
        )
    )
    best = max(y for pts in series.values() for _, y in pts)
    checks.append(
        ShapeCheck(
            "pv-gains-at-moderate-rates",
            best > 0.5,
            f"best improvement anywhere: {best:+.2f}%",
        )
    )
    skews = sorted(series)
    lo_line, hi_line = series[skews[0]], series[skews[-1]]
    lo_best, hi_best = _line_max(lo_line)[1], _line_max(hi_line)[1]
    checks.append(
        ShapeCheck(
            "gains-grow-with-value-skew",
            hi_best > lo_best,
            f"peak at skew {skews[-1]}: {hi_best:+.2f}% vs skew {skews[0]}: {lo_best:+.2f}%",
            robust=False,
        )
    )
    lo_tail = lo_line[-1][1]
    checks.append(
        ShapeCheck(
            "extreme-discount-hurts-low-skew",
            lo_tail < lo_best,
            f"skew {skews[0]}: tail {lo_tail:+.2f}% < peak {lo_best:+.2f}%",
            robust=False,
        )
    )
    return checks


def check_fig4(res: FigureResult) -> list[ShapeCheck]:
    series = res.series("alpha", "improvement_pct", "decay_skew")
    checks = []
    interior_beats_extremes = []
    for _dskew, pts in series.items():
        xs = [x for x, _ in pts]
        best_alpha, best = _line_max(pts)
        end_vals = [y for x, y in pts if x in (min(xs), max(xs))]
        interior_beats_extremes.append(best >= max(end_vals) - 1e-9)
    checks.append(
        ShapeCheck(
            "hybrid-works-best",
            all(interior_beats_extremes),
            "peak improvement per decay skew is >= both alpha extremes",
        )
    )
    magnitudes = [abs(y) for pts in series.values() for _, y in pts]
    checks.append(
        ShapeCheck(
            "bounded-improvements-modest",
            max(magnitudes) < 20.0,
            f"max |improvement| {max(magnitudes):.1f}% (paper: single digits)",
        )
    )
    return checks


def check_fig5(res: FigureResult) -> list[ShapeCheck]:
    series = res.series("alpha", "improvement_pct", "decay_skew")
    checks = []
    cost_best = all(
        pts[0][1] >= pts[-1][1] - 1.0 for pts in series.values()
    )
    checks.append(
        ShapeCheck(
            "never-useful-to-consider-gains",
            cost_best,
            "improvement at alpha=0 >= improvement at max alpha for every decay skew",
        )
    )
    trend_down = all(
        pts[0][1] >= pts[len(pts) // 2][1] - 1.0 >= pts[-1][1] - 2.0
        for pts in series.values()
    )
    checks.append(
        ShapeCheck(
            "improvement-decreases-with-alpha",
            trend_down,
            "alpha=0 >= mid-alpha >= max-alpha (with tolerance) per decay skew",
            robust=False,
        )
    )
    skews = sorted(series)
    grows = series[skews[-1]][0][1] > series[skews[0]][0][1]
    checks.append(
        ShapeCheck(
            "improvement-grows-with-decay-skew",
            grows,
            f"alpha=0: {series[skews[-1]][0][1]:+.1f}% at skew {skews[-1]} vs "
            f"{series[skews[0]][0][1]:+.1f}% at skew {skews[0]}",
        )
    )
    checks.append(
        ShapeCheck(
            "magnitude-order-larger-than-bounded-case",
            series[skews[-1]][0][1] > 5.0,
            f"alpha=0 improvement at top decay skew: {series[skews[-1]][0][1]:+.1f}%",
        )
    )
    return checks


def check_fig6(res: FigureResult) -> list[ShapeCheck]:
    series = res.series("load_factor", "yield_rate", "policy")
    checks = []
    ac0 = series["alpha=0"]
    noac = series["firstprice-noac"]
    checks.append(
        ShapeCheck(
            "admission-control-yield-rises-with-load",
            ac0[-1][1] > ac0[0][1] > 0,
            f"alpha=0: rate {ac0[0][1]:.1f} at load {ac0[0][0]} -> "
            f"{ac0[-1][1]:.1f} at load {ac0[-1][0]}",
        )
    )
    checks.append(
        ShapeCheck(
            "no-admission-control-collapses",
            noac[-1][1] < 0 and noac[-1][1] < noac[0][1],
            f"no-AC rate: {noac[0][1]:.1f} -> {noac[-1][1]:.1f}",
        )
    )
    checks.append(
        ShapeCheck(
            "admission-control-critical-under-heavy-load",
            ac0[-1][1] > noac[-1][1],
            f"at max load: AC {ac0[-1][1]:.1f} vs no-AC {noac[-1][1]:.1f}",
        )
    )
    if "alpha=1" in series:
        hi_alpha = series["alpha=1"]
        checks.append(
            ShapeCheck(
                "cost-ordering-matters-at-high-load",
                ac0[-1][1] >= hi_alpha[-1][1] - 1.0,
                f"at max load: alpha=0 {ac0[-1][1]:.1f} vs alpha=1 {hi_alpha[-1][1]:.1f}",
                robust=False,
            )
        )
    return checks


def check_fig7(res: FigureResult) -> list[ShapeCheck]:
    series = res.series("threshold", "improvement_pct", "load_factor")
    checks = []
    loads = sorted(series)
    peak_of = {load: _line_max(pts) for load, pts in series.items()}
    hi, lo = loads[-1], loads[0]
    checks.append(
        ShapeCheck(
            "ideal-threshold-grows-with-load",
            peak_of[hi][0] >= peak_of[lo][0],
            f"peak threshold {peak_of[hi][0]:g} at load {hi} vs "
            f"{peak_of[lo][0]:g} at load {lo}",
        )
    )
    checks.append(
        ShapeCheck(
            "threshold-matters-more-at-high-load",
            peak_of[hi][1] > peak_of[lo][1],
            f"peak improvement {peak_of[hi][1]:+.1f}% at load {hi} vs "
            f"{peak_of[lo][1]:+.1f}% at load {lo}",
        )
    )
    overloaded = [load for load in loads if load > 1.0]
    peaked = all(
        peak_of[load][1] > series[load][-1][1] for load in overloaded
    )
    checks.append(
        ShapeCheck(
            "high-threshold-overshoots",
            peaked,
            "for overloaded mixes the peak beats the rightmost (most "
            "conservative) threshold",
            robust=False,
        )
    )
    return checks


def check_faults(res: FigureResult) -> list[ShapeCheck]:
    series = res.series("mttf", "total_yield", "policy")
    checks = []
    for policy, pts in series.items():
        ys = [y for _, y in pts]  # ascending mttf
        monotone = all(ys[i] <= ys[i + 1] + 1e-9 for i in range(len(ys) - 1))
        lo, hi = pts[0], pts[-1]
        checks.append(
            ShapeCheck(
                f"yield-degrades-as-mttf-shrinks[{policy}]",
                monotone,
                f"{policy}: yield {hi[1]:.0f} at mttf {hi[0]:g} -> "
                f"{lo[1]:.0f} at mttf {lo[0]:g}, monotone along the sweep",
            )
        )
    aware = dict(series["firstreward-ac"])
    oblivious = dict(series["firstprice-noac"])
    dominated = all(aware[m] >= oblivious[m] for m in aware)
    worst_gap = min(aware[m] - oblivious[m] for m in aware)
    checks.append(
        ShapeCheck(
            "risk-aware-dominates-at-every-mttf",
            dominated,
            f"firstreward-ac >= firstprice-noac at all MTTFs "
            f"(smallest margin {worst_gap:+.0f})",
        )
    )
    return checks


def check_resilience(res: FigureResult) -> list[ShapeCheck]:
    series = res.series("mttf", "value_recovered", "policy")
    checks = []
    budgeted = [p for p in series if p.startswith("budget=") and p != "budget=0"]
    recovered = [y for p in budgeted for _, y in series[p]]
    checks.append(
        ShapeCheck(
            "failover-recovers-value",
            bool(recovered) and max(recovered) > 0 and min(recovered) >= 0,
            f"recovered value across budgeted policies: "
            f"max {max(recovered, default=0.0):.0f}, "
            f"min {min(recovered, default=0.0):.0f}",
        )
    )
    doubles = max(res.column("double_completions"))
    checks.append(
        ShapeCheck(
            "no-task-completes-twice",
            doubles == 0,
            f"max lineages completed on two sites across the grid: {doubles:g}",
        )
    )
    disabled = dict(res.series("mttf", "value_recovered", "policy")["disabled"])
    checks.append(
        ShapeCheck(
            "disabled-recovers-nothing",
            all(v == 0.0 for v in disabled.values()),
            "the plain market claws back no breached value",
        )
    )
    if budgeted:
        by_budget = sorted(budgeted, key=lambda p: int(p.split("=")[1]))
        lo = sum(y for _, y in series[by_budget[0]])
        hi = sum(y for _, y in series[by_budget[-1]])
        checks.append(
            ShapeCheck(
                "recovery-grows-with-budget",
                hi >= lo - 1e-9,
                f"total recovered: {hi:.0f} at {by_budget[-1]} vs "
                f"{lo:.0f} at {by_budget[0]}",
                robust=False,
            )
        )
    revenue = res.series("mttf", "total_revenue", "policy")
    wins = 0
    margins = []
    for mttf, base in revenue["disabled"]:
        best = max(
            dict(revenue[p]).get(mttf, float("-inf"))
            for p in revenue
            if p != "disabled"
        )
        wins += best >= base
        margins.append(f"mttf {mttf:g}: {best - base:+.0f}")
    n_levels = len(revenue["disabled"])
    checks.append(
        ShapeCheck(
            "resilience-pays-under-churn",
            2 * wins >= n_levels,
            f"best resilient policy out-earns the plain market at "
            f"{wins}/{n_levels} churn levels ({'; '.join(margins)})",
            robust=False,
        )
    )
    return checks


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ExperimentDef:
    name: str
    description: str
    run: Callable[..., FigureResult]
    check: Callable[[FigureResult], list[ShapeCheck]]
    quick: dict
    full: dict


EXPERIMENTS: dict[str, ExperimentDef] = {
    "fig3": ExperimentDef(
        name="fig3",
        description="PV vs FirstPrice across discount rates and value skews",
        run=run_fig3,
        check=check_fig3,
        quick=dict(
            n_jobs=1500,
            seeds=(0,),
            value_skews=(1.0, 2.15, 9.0),
            discount_percents=(0.001, 0.1, 1.0, 10.0),
        ),
        full=dict(n_jobs=5000, seeds=(0, 1)),
    ),
    "fig4": ExperimentDef(
        name="fig4",
        description="FirstReward alpha sweep, bounded penalties",
        run=run_fig4,
        check=check_fig4,
        quick=dict(
            n_jobs=2000,
            seeds=(0, 1),
            alphas=(0.0, 0.3, 0.6, 0.9),
            decay_skews=(3.0, 7.0),
        ),
        full=dict(n_jobs=5000, seeds=(0, 1, 2)),
    ),
    "fig5": ExperimentDef(
        name="fig5",
        description="FirstReward alpha sweep, unbounded penalties",
        run=run_fig5,
        check=check_fig5,
        quick=dict(
            n_jobs=2000,
            seeds=(0, 1),
            alphas=(0.0, 0.3, 0.6, 0.9),
            decay_skews=(3.0, 7.0),
        ),
        full=dict(n_jobs=5000, seeds=(0, 1, 2)),
    ),
    "fig6": ExperimentDef(
        name="fig6",
        description="yield rate vs load factor with slack admission control",
        run=run_fig6,
        check=check_fig6,
        quick=dict(
            n_jobs=1500,
            seeds=(0,),
            load_factors=(0.5, 1.5, 3.0, 4.5),
            alphas=(0.0, 0.4, 1.0),
        ),
        full=dict(n_jobs=5000, seeds=(0, 1)),
    ),
    "fig7": ExperimentDef(
        name="fig7",
        description="improvement over no admission control vs slack threshold",
        run=run_fig7,
        check=check_fig7,
        quick=dict(
            n_jobs=1500,
            seeds=(0,),
            load_factors=(0.5, 1.33, 2.0),
            thresholds=(-200.0, 0.0, 200.0, 400.0, 700.0),
        ),
        full=dict(n_jobs=5000, seeds=(0, 1)),
    ),
    "faults": ExperimentDef(
        name="faults",
        description="extension: yield vs node MTTF under fault injection",
        run=run_faults,
        check=check_faults,
        quick=dict(n_jobs=600, seeds=(0, 1)),
        full=dict(n_jobs=5000, seeds=(0, 1, 2)),
    ),
    "resilience": ExperimentDef(
        name="resilience",
        description=(
            "extension: chaos sweep — value recovered vs MTTF under "
            "circuit breakers and failover re-bidding"
        ),
        run=run_resilience,
        check=check_resilience,
        quick=dict(
            n_jobs=300,
            seeds=(0, 1),
            mttfs=(1000.0, 500.0, 250.0),
            budgets=(0, 1, 3),
        ),
        full=dict(n_jobs=2000, seeds=(0, 1, 2)),
    ),
}


def run_experiment(
    name: str,
    scale: str = "quick",
    obs: "Optional[Observability]" = None,
    workers: Optional[int] = None,
    **overrides,
) -> FigureResult:
    """Run a registered experiment at ``quick`` or ``full`` scale.

    With *obs* given, the whole sweep runs under that observability
    attachment: every ``simulate_site`` replication brackets itself as
    one observed run (spans, metrics, profiling), and the observer's
    per-run summary rows plus span/drop bookkeeping are folded into the
    result's notes so exported JSON carries its own telemetry summary.

    *workers* fans the experiment's independent (config, seed) cells out
    over that many processes (``None`` → ``$REPRO_WORKERS`` → serial);
    the result is byte-identical at any worker count.  Combining
    ``workers > 1`` with *obs* raises: spans recorded inside worker
    processes would never reach the parent's exporters.
    """
    try:
        definition = EXPERIMENTS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {name!r}; options: {sorted(EXPERIMENTS)}"
        ) from None
    if scale not in ("quick", "full"):
        raise ExperimentError(f"scale must be 'quick' or 'full', got {scale!r}")
    kwargs = dict(definition.quick if scale == "quick" else definition.full)
    kwargs.update(overrides)
    if workers is not None:
        kwargs["workers"] = workers
    if obs is None:
        return definition.run(**kwargs)

    from repro.obs.instrument import observing

    with observing(obs):
        result = definition.run(**kwargs)
    spans = obs.spans
    note = f"observability: {obs.run_index + 1} instrumented runs"
    if spans is not None:
        note += f", {len(spans)} spans retained"
        if spans.dropped:
            note += f" ({spans.dropped} dropped)"
    result.notes.append(note)
    return result


def shape_report(result: FigureResult) -> list[ShapeCheck]:
    """Run the registered shape checks for a figure result."""
    definition = EXPERIMENTS.get(result.figure)
    if definition is None:
        raise ExperimentError(f"no shape checks registered for {result.figure!r}")
    return definition.check(result)
