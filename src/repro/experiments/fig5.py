"""Figure 5 — the Figure 4 sweep with unbounded penalties.

Paper: "This experiment is identical to Figure 4, but the penalties are
unbounded.  In this case, where the system must accept and complete all
jobs, it is never useful to consider gains, only cost.  Note that the
magnitude of the improvement relative to FirstPrice is much larger with
unbounded penalties."
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import FigureResult
from repro.experiments.fig4 import ALPHAS, DECAY_SKEWS, sweep_alpha


def run_fig5(
    n_jobs: int = 5000,
    seeds: Sequence[int] = (0, 1, 2),
    alphas: Sequence[float] = ALPHAS,
    decay_skews: Sequence[float] = DECAY_SKEWS,
    processors: int = 16,
    workers: Optional[int] = None,
) -> FigureResult:
    """Regenerate Figure 5 (unbounded penalties)."""
    return sweep_alpha(
        figure="fig5",
        title="FirstReward improvement over FirstPrice vs alpha (unbounded penalties)",
        penalty_bound=None,
        n_jobs=n_jobs,
        seeds=seeds,
        alphas=alphas,
        decay_skews=decay_skews,
        processors=processors,
        workers=workers,
    )
