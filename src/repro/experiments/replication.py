"""Replication harness: run a figure across disjoint seeds, report CIs.

The per-figure run functions average internally over their ``seeds``
argument; this harness instead runs the whole experiment once per
replication seed and reports mean ± 95% CI for every metric column —
the uncertainty EXPERIMENTS.md quotes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ExperimentError
from repro.experiments.common import FigureResult
from repro.experiments.runner import EXPERIMENTS
from repro.metrics.stats import SeriesStats, mean_and_ci
from repro.metrics.tables import format_table

#: Coordinate (grouping) columns per figure; every other numeric column
#: is treated as a metric and aggregated across replications.
GROUP_KEYS: dict[str, tuple[str, ...]] = {
    "fig3": ("value_skew", "discount_pct"),
    "fig4": ("decay_skew", "alpha"),
    "fig5": ("decay_skew", "alpha"),
    "fig6": ("policy", "load_factor"),
    "fig7": ("load_factor", "threshold"),
    "faults": ("policy", "mttf"),
    "resilience": ("policy", "mttf"),
}


@dataclass
class ReplicatedResult:
    """Aggregated rows: coordinates plus ``SeriesStats`` per metric."""

    figure: str
    title: str
    replications: int
    rows: list[dict] = field(default_factory=list)

    def table(self) -> str:
        printable = []
        for row in self.rows:
            out = {}
            for key, value in row.items():
                out[key] = str(value) if isinstance(value, SeriesStats) else value
            printable.append(out)
        return format_table(
            printable,
            title=f"{self.figure} (mean ± 95% CI over {self.replications} replications)",
        )

    def stat(self, metric: str, **coords) -> SeriesStats:
        matches = [
            r for r in self.rows if all(r.get(k) == v for k, v in coords.items())
        ]
        if len(matches) != 1:
            raise ExperimentError(f"stat lookup {coords} matched {len(matches)} rows")
        value = matches[0][metric]
        if not isinstance(value, SeriesStats):
            raise ExperimentError(f"{metric!r} is not a metric column")
        return value


def run_replicated(
    name: str,
    replications: int = 5,
    base_seed: int = 0,
    scale: str = "quick",
    **overrides,
) -> ReplicatedResult:
    """Run *name* once per replication seed and aggregate the metrics.

    Each replication uses a single disjoint seed (``base_seed + i``); any
    ``seeds`` override is rejected — the harness owns seeding.
    """
    if "seeds" in overrides:
        raise ExperimentError("run_replicated controls the seeds; do not override them")
    if replications < 2:
        raise ExperimentError("need at least 2 replications for an interval")
    definition = EXPERIMENTS.get(name)
    if definition is None:
        raise ExperimentError(f"unknown experiment {name!r}; options: {sorted(EXPERIMENTS)}")
    group_keys = GROUP_KEYS[name]

    kwargs = dict(definition.quick if scale == "quick" else definition.full)
    kwargs.update(overrides)
    kwargs.pop("seeds", None)

    collected: dict[tuple, dict[str, list[float]]] = {}
    order: list[tuple] = []
    title = ""
    for rep in range(replications):
        result: FigureResult = definition.run(seeds=(base_seed + rep,), **kwargs)
        title = result.title
        for row in result.rows:
            coords = tuple(row[k] for k in group_keys)
            if coords not in collected:
                collected[coords] = {}
                order.append(coords)
            for key, value in row.items():
                if key in group_keys or not isinstance(value, (int, float)):
                    continue
                collected[coords].setdefault(key, []).append(float(value))

    out = ReplicatedResult(
        figure=name, title=title, replications=replications
    )
    for coords in order:
        row: dict = dict(zip(group_keys, coords))
        for metric, values in collected[coords].items():
            if len(values) != replications:
                raise ExperimentError(
                    f"metric {metric!r} at {coords} has {len(values)} samples, "
                    f"expected {replications} (non-deterministic row set?)"
                )
            row[metric] = mean_and_ci(values)
        out.rows.append(row)
    return out
