"""Extension experiment: private clusters vs a consolidated utility vs a market.

The paper's introduction motivates grids with exactly this comparison:
"Linking clusters together in grids can improve resource efficiency;
consolidating small private clusters into cluster utilities can reduce
management cost and bring more compute power to each user on demand."

This experiment quantifies that claim inside the paper's own yield
model.  One task stream of total load L against capacity C is served
three ways:

* **private** — K isolated sites of C/K nodes; each user group's tasks
  go to its own site (round-robin assignment, no sharing);
* **consolidated** — one C-node site receiving everything;
* **market** — K sites of C/K nodes behind a broker (Fig. 1): statistical
  multiplexing recovered through negotiation instead of merging.

All three use the same FirstReward scheduling; rows report total yield
and mean delay per organization.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.experiments.common import FigureResult
from repro.experiments.parallel import CellExecutor
from repro.market.broker import Broker
from repro.market.economy import MarketEconomy
from repro.market.sites import MarketSite
from repro.scheduling.firstreward import FirstReward
from repro.sim.kernel import Simulator
from repro.site.driver import simulate_site
from repro.workload.generator import generate_trace
from repro.workload.millennium import economy_spec
from repro.workload.trace import Trace

DISCOUNT_RATE = 0.01
ALPHA = 0.3


def _split_round_robin(trace: Trace, k: int) -> list[Trace]:
    """Assign tasks to K organizations round-robin (arrival order)."""
    indices = [list(range(i, len(trace), k)) for i in range(k)]
    return [
        Trace(
            trace.arrival[idx],
            trace.runtime[idx],
            trace.value[idx],
            trace.decay[idx],
            trace.bound[idx],
            trace.estimate[idx],
            name=f"{trace.name}/org{i}",
        )
        for i, idx in enumerate(indices)
    ]


def _private(trace: Trace, k: int, processors: int) -> dict:
    per_site = processors // k
    yields, delays = [], []
    for part in _split_round_robin(trace, k):
        result = simulate_site(
            part, FirstReward(ALPHA, DISCOUNT_RATE), processors=per_site,
            keep_records=True,
        )
        yields.append(result.total_yield)
        delays.append(result.ledger.mean_delay)
    return {"total_yield": sum(yields), "mean_delay": float(np.mean(delays))}


def _consolidated(trace: Trace, processors: int) -> dict:
    result = simulate_site(
        trace, FirstReward(ALPHA, DISCOUNT_RATE), processors=processors,
        keep_records=True,
    )
    return {"total_yield": result.total_yield, "mean_delay": result.ledger.mean_delay}


def _market(trace: Trace, k: int, processors: int) -> dict:
    from repro.site.admission import SlackAdmission

    sim = Simulator()
    sites = [
        MarketSite(
            sim,
            site_id=f"site{i}",
            processors=processors // k,
            heuristic=FirstReward(ALPHA, DISCOUNT_RATE),
            admission=SlackAdmission(threshold=-math.inf, discount_rate=DISCOUNT_RATE),
        )
        for i in range(k)
    ]
    economy = MarketEconomy(sim, Broker(sites=sites))
    economy.schedule_trace(trace)
    result = economy.run()
    delays = [
        c.actual_completion - c.signed_at - c.bid.runtime
        for s in sites
        for c in s.contracts
        if c.actual_completion is not None
    ]
    return {
        "total_yield": result.total_revenue,
        "mean_delay": float(np.mean(delays)) if delays else 0.0,
    }


_ORGANIZATIONS = ("private", "consolidated", "market")


def _org_cell(organization: str, spec, seed: int, k: int, processors: int) -> dict:
    """One (organization, load, seed) cell — regenerates the seed's trace
    locally so the cell stays a pure function of picklable inputs (the
    trace is deterministic in (spec, seed), so each organization sees the
    same stream it did when the trace was generated once and shared)."""
    trace = generate_trace(spec, seed=seed)
    if organization == "private":
        return _private(trace, k, processors)
    if organization == "consolidated":
        return _consolidated(trace, processors)
    return _market(trace, k, processors)


def run_consolidation(
    n_jobs: int = 2000,
    seeds: Sequence[int] = (0,),
    k: int = 4,
    processors: int = 16,
    load_factors: Sequence[float] = (0.7, 1.0, 1.5),
    workers: Optional[int] = None,
) -> FigureResult:
    """Compare the three organizations across load factors."""
    result = FigureResult(
        figure="consolidation",
        title=f"private {k}x{processors // k}-node clusters vs consolidated "
        f"{processors}-node utility vs market",
        notes=[
            f"economy mix, FirstReward(alpha={ALPHA}, r={DISCOUNT_RATE}), "
            f"n={n_jobs}, seeds={list(seeds)}",
            "extension experiment motivated by the paper's introduction "
            "(not part of its evaluation)",
        ],
    )
    with CellExecutor(workers) as ex:
        cells = {}
        for load in load_factors:
            spec = economy_spec(
                n_jobs=n_jobs, load_factor=load, processors=processors,
                penalty_bound=0.0,
            )
            for seed in seeds:
                for organization in _ORGANIZATIONS:
                    cells[load, seed, organization] = ex.submit(
                        _org_cell, organization, spec, seed, k, processors
                    )
        for load in load_factors:
            for organization in _ORGANIZATIONS:
                samples = [cells[load, seed, organization].result() for seed in seeds]
                result.rows.append(
                    {
                        "load_factor": load,
                        "organization": organization,
                        "total_yield": float(
                            np.mean([s["total_yield"] for s in samples])
                        ),
                        "mean_delay": float(
                            np.mean([s["mean_delay"] for s in samples])
                        ),
                    }
                )
    return result
