"""Resilience experiment — a chaos sweep over MTTF × failover budget.

Not a paper figure: the paper's market assumes sites honour every
contract.  This extension injects node churn at each site (the
``repro.faults`` crash/repair cycles with ``restart="abandon"``, so a
killed task breaches its contract) and asks how much of the breached
value the market-level recovery machinery claws back:

* the *disabled* policy is the plain market under the same chaos —
  breaches settle at the penalty floor and the value is simply lost;
* each ``budget=N`` policy enables :class:`~repro.resilience` with a
  per-lineage failover budget of N re-bids, circuit breakers gating
  negotiation, and health tracking feeding the breaker trip wires.

Every (mttf, policy, seed) point shares the workload trace and the
per-site fault streams — common random numbers, so the budget axis
isolates the recovery policy: the same crashes hit the same schedules
and only the response differs.  Expected shape: recovered value is
strictly positive once the budget is, grows (weakly) with the budget,
and no lineage ever completes on two sites.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import FigureResult
from repro.experiments.parallel import CellExecutor, mean_rows_of
from repro.faults.spec import FaultSpec
from repro.resilience.config import ResilienceConfig
from repro.resilience.driver import simulate_resilient_market
from repro.scheduling.firstreward import FirstReward
from repro.site.admission import SlackAdmission
from repro.workload.generator import generate_trace
from repro.workload.millennium import economy_spec

#: Sweep grid defaults: per-node MTTF (mean task duration is 100) and
#: failover re-bid budgets per task lineage (0 = breakers/health only).
MTTFS = (2000.0, 1000.0, 500.0, 250.0)
BUDGETS = (0, 1, 3)
MTTR = 100.0
ALPHA = 0.2
DISCOUNT_RATE = 0.01
SLACK_THRESHOLD = 180.0
LOAD_FACTOR = 1.5
VALUE_SKEW = 3.0
DECAY_SKEW = 5.0
PENALTY_BOUND = 2.0  # bounded penalties: breaches are legal (and priced)
COOLDOWN = 300.0

#: Resilience-summary columns carried into each result row.
_RES_KEYS = (
    "breaches",
    "failovers_attempted",
    "failovers_contracted",
    "failovers_completed",
    "value_recovered",
    "value_lost_to_breach",
    "lineages_exhausted",
    "double_completions",
    "breaker_opens",
)


def _one_run(
    spec,
    mttf: float,
    mttr: float,
    config: ResilienceConfig,
    seed: int,
    n_sites: int,
    processors_per_site: int,
    slack_threshold: float,
) -> dict:
    trace = generate_trace(spec, seed=seed)
    faults = FaultSpec(mttf=mttf, mttr=mttr, restart="abandon")
    result = simulate_resilient_market(
        trace,
        heuristic_factory=lambda: FirstReward(ALPHA, DISCOUNT_RATE),
        n_sites=n_sites,
        processors_per_site=processors_per_site,
        admission_factory=lambda: SlackAdmission(slack_threshold, DISCOUNT_RATE),
        config=config,
        faults=faults,
        fault_seed=seed,
    )
    resilience = result.manager.summary()
    row = {
        "total_revenue": result.total_revenue,
        "accepted": float(result.economy.accepted),
        "crashes": float(result.fault_stats.crashes),
        "tasks_killed": float(result.fault_stats.tasks_killed),
        "breaker_open_time": float(
            sum(resilience["breaker_open_time"].values())
        ),
    }
    for key in _RES_KEYS:
        row[key] = float(resilience[key])
    return row


def run_resilience(
    n_jobs: int = 300,
    seeds: Sequence[int] = (0, 1),
    mttfs: Sequence[float] = MTTFS,
    budgets: Sequence[int] = BUDGETS,
    n_sites: int = 4,
    processors_per_site: int = 4,
    mttr: float = MTTR,
    load_factor: float = LOAD_FACTOR,
    slack_threshold: float = SLACK_THRESHOLD,
    cooldown: float = COOLDOWN,
    workers: Optional[int] = None,
) -> FigureResult:
    """Sweep MTTF × failover budget; one row per (policy, mttf).

    The ``disabled`` policy (plain market, no recovery layer) anchors
    each MTTF; ``budget=N`` policies enable resilience with that
    failover budget.  Rows average the per-seed runs.
    """
    result = FigureResult(
        figure="resilience",
        title="Value recovered vs node MTTF under market-level failover",
        notes=[
            f"economy mix: value skew {VALUE_SKEW}, decay skew {DECAY_SKEW}, "
            f"penalty bound {PENALTY_BOUND:g}x, load factor {load_factor:g}, "
            f"n={n_jobs}, seeds={list(seeds)}",
            f"market: {n_sites} sites x {processors_per_site} processors, "
            f"FirstReward(alpha={ALPHA:g}) + slack admission "
            f"({slack_threshold:g})",
            f"chaos: mttr={mttr:g}, restart=abandon (crashes breach "
            f"contracts), common random numbers across the budget axis",
            f"resilience: breaker cooldown {cooldown:g}, "
            f"budgets={list(budgets)}; 'disabled' is the plain market",
        ],
    )
    spec = economy_spec(
        n_jobs=n_jobs,
        value_skew=VALUE_SKEW,
        decay_skew=DECAY_SKEW,
        load_factor=load_factor,
        processors=n_sites * processors_per_site,
        penalty_bound=PENALTY_BOUND,
    )
    policies = [("disabled", ResilienceConfig())]
    policies += [
        (
            f"budget={budget}",
            ResilienceConfig(
                enabled=True, failover_budget=budget, cooldown=cooldown
            ),
        )
        for budget in budgets
    ]
    with CellExecutor(workers) as ex:
        cells = {}
        for mttf in mttfs:
            for policy, config in policies:
                cells[mttf, policy] = mean_rows_of(
                    [
                        ex.submit(
                            _one_run,
                            spec,
                            mttf,
                            mttr,
                            config,
                            seed,
                            n_sites,
                            processors_per_site,
                            slack_threshold,
                        )
                        for seed in seeds
                    ]
                )
        for mttf in mttfs:
            for policy, _ in policies:
                result.rows.append(
                    {"policy": policy, "mttf": mttf, **cells[mttf, policy].result()}
                )
    return result
