"""Figure 4 — FirstReward vs FirstPrice across α, bounded penalties.

Paper: "Improvement of FirstReward over FirstPrice as the α parameter
varies, for job mixes with bounded penalties and varying decay skew
ratios. ... The hybrid heuristic works best overall."  Value skew is
held at 2; the discount rate is 1%.

Configuration: economy mix (exponential durations/inter-arrivals),
penalties bounded at zero, load factor 0.9 — the stable near-saturation
regime where queue depths match the α trade-off the paper explores (see
EXPERIMENTS.md for the calibration analysis).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import FigureResult
from repro.experiments.parallel import CellExecutor, submit_mean_yield
from repro.metrics.compare import improvement_percent
from repro.workload.millennium import economy_spec

ALPHAS = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)
DECAY_SKEWS = (3.0, 5.0, 7.0)
VALUE_SKEW = 2.0
DISCOUNT_RATE = 0.01
LOAD_FACTOR = 0.9


def fig45_spec(
    decay_skew: float,
    penalty_bound: Optional[float],
    n_jobs: int = 5000,
    processors: int = 16,
):
    return economy_spec(
        n_jobs=n_jobs,
        value_skew=VALUE_SKEW,
        decay_skew=decay_skew,
        load_factor=LOAD_FACTOR,
        processors=processors,
        penalty_bound=penalty_bound,
    )


def sweep_alpha(
    figure: str,
    title: str,
    penalty_bound: Optional[float],
    n_jobs: int,
    seeds: Sequence[int],
    alphas: Sequence[float],
    decay_skews: Sequence[float],
    processors: int,
    workers: Optional[int] = None,
) -> FigureResult:
    """Shared α-sweep used by Figures 4 and 5 (they differ only in bounds)."""
    result = FigureResult(
        figure=figure,
        title=title,
        notes=[
            f"economy mix: value skew {VALUE_SKEW}, load {LOAD_FACTOR}, "
            f"discount {DISCOUNT_RATE:.0%}, "
            f"{'unbounded' if penalty_bound is None else f'bound={penalty_bound:g}'}, "
            f"n={n_jobs}, seeds={list(seeds)}",
        ],
    )
    with CellExecutor(workers) as ex:
        cells = {}
        for dskew in decay_skews:
            spec = fig45_spec(
                dskew, penalty_bound, n_jobs=n_jobs, processors=processors
            )
            cells[dskew] = submit_mean_yield(ex, spec, ("firstprice", {}), seeds)
            for alpha in alphas:
                cells[dskew, alpha] = submit_mean_yield(
                    ex,
                    spec,
                    ("firstreward", {"alpha": alpha, "discount_rate": DISCOUNT_RATE}),
                    seeds,
                )
        for dskew in decay_skews:
            baseline = cells[dskew].result()
            for alpha in alphas:
                fr = cells[dskew, alpha].result()
                result.rows.append(
                    {
                        "decay_skew": dskew,
                        "alpha": alpha,
                        "firstreward_yield": fr,
                        "firstprice_yield": baseline,
                        "improvement_pct": improvement_percent(fr, baseline),
                    }
                )
    return result


def run_fig4(
    n_jobs: int = 5000,
    seeds: Sequence[int] = (0, 1, 2),
    alphas: Sequence[float] = ALPHAS,
    decay_skews: Sequence[float] = DECAY_SKEWS,
    processors: int = 16,
    workers: Optional[int] = None,
) -> FigureResult:
    """Regenerate Figure 4 (bounded penalties)."""
    return sweep_alpha(
        figure="fig4",
        title="FirstReward improvement over FirstPrice vs alpha (bounded penalties)",
        penalty_bound=0.0,
        n_jobs=n_jobs,
        seeds=seeds,
        alphas=alphas,
        decay_skews=decay_skews,
        processors=processors,
        workers=workers,
    )
