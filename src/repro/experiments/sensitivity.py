"""Sensitivity analysis over the workload's interacting characteristics.

§4.1: "Many interacting characteristics of the job mixes play key roles
in determining the results. ... Other trace properties that affect
results include the distributions of value, decay, job duration, and
inter-arrival times."  This harness maps that interaction surface: the
FirstReward-over-FirstPrice improvement across a value-skew × decay-skew
grid (at fixed load), and across a load × decay-horizon grid (at fixed
skews).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import FigureResult
from repro.experiments.parallel import CellExecutor, submit_mean_yield
from repro.metrics.compare import improvement_percent
from repro.workload.millennium import economy_spec

ALPHA = 0.3
DISCOUNT_RATE = 0.01

_FIRSTREWARD = ("firstreward", {"alpha": ALPHA, "discount_rate": DISCOUNT_RATE})


def run_skew_grid(
    n_jobs: int = 1500,
    seeds: Sequence[int] = (0,),
    value_skews: Sequence[float] = (1.0, 2.0, 4.0, 8.0),
    decay_skews: Sequence[float] = (1.0, 3.0, 5.0, 7.0),
    load_factor: float = 0.9,
    processors: int = 16,
    workers: Optional[int] = None,
) -> FigureResult:
    """FirstReward improvement across the (value skew × decay skew) grid."""
    result = FigureResult(
        figure="sensitivity-skews",
        title=f"FirstReward(alpha={ALPHA}) improvement over FirstPrice, "
        "value skew x decay skew (unbounded penalties)",
        notes=[f"economy mix, load {load_factor}, n={n_jobs}, seeds={list(seeds)}"],
    )
    with CellExecutor(workers) as ex:
        cells = {}
        for vskew in value_skews:
            for dskew in decay_skews:
                spec = economy_spec(
                    n_jobs=n_jobs,
                    value_skew=vskew,
                    decay_skew=dskew,
                    load_factor=load_factor,
                    processors=processors,
                )
                cells[vskew, dskew] = (
                    submit_mean_yield(ex, spec, ("firstprice", {}), seeds),
                    submit_mean_yield(ex, spec, _FIRSTREWARD, seeds),
                )
        for vskew in value_skews:
            for dskew in decay_skews:
                baseline_h, fr_h = cells[vskew, dskew]
                result.rows.append(
                    {
                        "value_skew": vskew,
                        "decay_skew": dskew,
                        "improvement_pct": improvement_percent(
                            fr_h.result(), baseline_h.result()
                        ),
                    }
                )
    return result


def run_load_horizon_grid(
    n_jobs: int = 1500,
    seeds: Sequence[int] = (0,),
    load_factors: Sequence[float] = (0.6, 0.8, 0.9, 1.0),
    horizons: Sequence[float] = (1.0, 2.0, 4.0, 8.0),
    processors: int = 16,
    workers: Optional[int] = None,
) -> FigureResult:
    """FirstReward improvement across the (load × decay-horizon) grid.

    The horizon is how many mean runtimes of delay erase an average
    job's value — the urgency scale the paper leaves implicit.
    """
    result = FigureResult(
        figure="sensitivity-load-horizon",
        title=f"FirstReward(alpha={ALPHA}) improvement over FirstPrice, "
        "load factor x decay horizon (unbounded penalties)",
        notes=[
            f"economy mix, value skew 2, decay skew 5, n={n_jobs}, seeds={list(seeds)}"
        ],
    )
    with CellExecutor(workers) as ex:
        cells = {}
        for load in load_factors:
            for horizon in horizons:
                spec = economy_spec(
                    n_jobs=n_jobs,
                    value_skew=2.0,
                    decay_skew=5.0,
                    load_factor=load,
                    processors=processors,
                    decay_horizon=horizon,
                )
                cells[load, horizon] = (
                    submit_mean_yield(ex, spec, ("firstprice", {}), seeds),
                    submit_mean_yield(ex, spec, _FIRSTREWARD, seeds),
                )
        for load in load_factors:
            for horizon in horizons:
                baseline_h, fr_h = cells[load, horizon]
                result.rows.append(
                    {
                        "load_factor": load,
                        "decay_horizon": horizon,
                        "improvement_pct": improvement_percent(
                            fr_h.result(), baseline_h.result()
                        ),
                    }
                )
    return result
