"""Parallel experiment execution engine: deterministic cell fan-out.

Every experiment in this repo is an embarrassingly parallel grid of
independent seeded simulations — (seed × load × heuristic) cells with no
shared state.  This module runs those cells through a
:class:`CellExecutor` that is either *inline* (``workers=1``, the
default: each cell executes immediately at submission, exactly the
serial program order) or backed by a :class:`~concurrent.futures.\
ProcessPoolExecutor` fanning cells across worker processes.

**Determinism contract.**  Parallel execution must be invisible in the
output: the result JSON for ``--workers N`` is byte-identical to the
serial run.  Three properties guarantee it:

1. every cell is a pure function of picklable inputs (workload spec,
   heuristic/admission *descriptors*, seed) — no ambient state crosses
   the process boundary;
2. each cell's arithmetic is identical in both modes — the inline path
   runs the very same module-level cell functions the workers import;
3. experiments assemble rows by iterating their grid in canonical
   (submission) order and reading each cell's handle, so completion
   order never leaks into row order.

Heuristics and admission policies are described by ``(name, params)``
descriptors rather than factories because closures do not pickle; the
descriptors resolve through :mod:`repro.scheduling.registry` on
whichever side of the process boundary runs the cell.

**Observability.**  Live telemetry attachments record through in-process
hooks; a worker process's spans and metrics would die with the worker
and silently vanish from the parent's exporters.  Creating a multi-worker
executor while an observability attachment is active (ambient
:func:`repro.obs.observing` or the CLI's ``--trace-out``/
``--metrics-out``) is therefore a hard error — run serially for traces,
or drop the telemetry flags to fan out.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Optional, Sequence

import numpy as np

from repro.errors import ExperimentError

#: Environment variable giving the default worker count for every
#: experiment run (the CLI ``--workers`` flag overrides it).
WORKERS_ENV = "REPRO_WORKERS"

#: Descriptor for a heuristic or admission policy: (registry name, params).
Descriptor = tuple


def resolve_workers(workers: Optional[int] = None) -> int:
    """Explicit count, else ``$REPRO_WORKERS``, else 1 (serial)."""
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            raise ExperimentError(
                f"{WORKERS_ENV} must be an integer, got {raw!r}"
            ) from None
    if workers < 1:
        raise ExperimentError(f"worker count must be >= 1, got {workers}")
    return int(workers)


def _require_no_observability(workers: int) -> None:
    from repro.obs.instrument import current

    if current() is not None:
        raise ExperimentError(
            f"live observability cannot cross process boundaries: an "
            f"attachment is active but workers={workers} would run cells "
            f"in worker processes whose spans/metrics never reach the "
            f"parent's exporters. Run with --workers 1 (or unset "
            f"{WORKERS_ENV}), or drop --trace-out/--metrics-out."
        )


class CellHandle:
    """Deferred result of one submitted cell."""

    __slots__ = ("_value", "_future")

    def __init__(self, value=None, future=None) -> None:
        self._value = value
        self._future = future

    def result(self):
        if self._future is not None:
            return self._future.result()
        return self._value


class FoldHandle:
    """Fold several cell handles into one value at resolution time."""

    __slots__ = ("_handles", "_fold")

    def __init__(self, handles: Sequence[CellHandle], fold: Callable) -> None:
        self._handles = list(handles)
        self._fold = fold

    def result(self):
        return self._fold([h.result() for h in self._handles])


def _mean_scalar(values: list) -> float:
    return float(np.mean(values))


def mean_rows(rows: Sequence[dict]) -> dict:
    """Column-wise mean of per-seed row dicts (shared by faults/resilience)."""
    return {k: float(np.mean([r[k] for r in rows])) for k in rows[0]}


def mean_of(handles: Sequence[CellHandle]) -> FoldHandle:
    """Handle resolving to the float mean of *handles* (per-seed scalars)."""
    return FoldHandle(handles, _mean_scalar)


def mean_rows_of(handles: Sequence[CellHandle]) -> FoldHandle:
    """Handle resolving to the column-wise mean of per-seed row dicts."""
    return FoldHandle(handles, mean_rows)


class CellExecutor:
    """Runs experiment cells inline or across a process pool.

    ``workers`` of ``None`` consults ``$REPRO_WORKERS``; 1 means inline
    (cells execute immediately at ``submit``, preserving the serial
    program order bit for bit); >1 fans out over that many processes.

    Use as a context manager so the pool is torn down even when a cell
    raises::

        with CellExecutor(workers) as ex:
            handles = [ex.submit(cell_fn, ...) for ...]
            values = [h.result() for h in handles]
    """

    def __init__(self, workers: Optional[int] = None) -> None:
        self.workers = resolve_workers(workers)
        self._pool: Optional[ProcessPoolExecutor] = None
        if self.workers > 1:
            _require_no_observability(self.workers)
            self._pool = ProcessPoolExecutor(max_workers=self.workers)

    def submit(self, fn: Callable, /, *args, **kwargs) -> CellHandle:
        """Submit ``fn(*args, **kwargs)``; inline mode runs it right now."""
        if self._pool is None:
            return CellHandle(value=fn(*args, **kwargs))
        return CellHandle(future=self._pool.submit(fn, *args, **kwargs))

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "CellExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()


# ----------------------------------------------------------------------
# Descriptor resolution + the shared single-site cell
# ----------------------------------------------------------------------

def build_heuristic(descriptor: Descriptor):
    """Resolve a ``(name, params)`` heuristic descriptor via the registry."""
    from repro.scheduling.registry import make_heuristic

    name, params = descriptor
    return make_heuristic(name, **params)


def build_admission(descriptor: Optional[Descriptor]):
    """Resolve an admission descriptor (``None`` = no admission control)."""
    if descriptor is None:
        return None
    name, params = descriptor
    if name != "slack":
        raise ExperimentError(f"unknown admission policy {name!r}")
    from repro.site.admission import SlackAdmission

    return SlackAdmission(**params)


def simulate_cell_metric(
    spec,
    heuristic,
    seed: int,
    metric: str = "total_yield",
    admission=None,
    **site_kwargs,
) -> float:
    """The per-seed core every figure cell runs: fresh trace, one site
    simulation, one scalar metric.

    *heuristic* and *admission* are constructed objects here;
    :func:`run_site_cell` is the descriptor-taking picklable wrapper and
    :func:`repro.experiments.common.mean_yield` the serial factory-taking
    one — both funnel through this function, so the serial and parallel
    paths cannot drift apart.
    """
    from repro.site.driver import simulate_site
    from repro.workload.generator import generate_trace

    trace = generate_trace(spec, seed=seed)
    result = simulate_site(
        trace,
        heuristic,
        processors=spec.processors,
        admission=admission,
        keep_records=False,
        **site_kwargs,
    )
    return getattr(result, metric)


def run_site_cell(
    spec,
    heuristic: Descriptor,
    seed: int,
    metric: str = "total_yield",
    admission: Optional[Descriptor] = None,
    **site_kwargs,
) -> float:
    """One seeded trace-through-site simulation; the universal figure cell."""
    return simulate_cell_metric(
        spec,
        build_heuristic(heuristic),
        seed,
        metric,
        build_admission(admission),
        **site_kwargs,
    )


def submit_mean_yield(
    ex: CellExecutor,
    spec,
    heuristic: Descriptor,
    seeds: Sequence[int],
    metric: str = "total_yield",
    admission: Optional[Descriptor] = None,
    **site_kwargs,
) -> FoldHandle:
    """Fan one figure cell's seeds out through *ex*; resolves to the mean.

    The executor-routed analogue of
    :func:`repro.experiments.common.mean_yield`.
    """
    if not seeds:
        raise ExperimentError("at least one seed is required")
    return mean_of(
        [
            ex.submit(
                run_site_cell, spec, heuristic, seed, metric, admission, **site_kwargs
            )
            for seed in seeds
        ]
    )
