"""Figure 7 — the slack-threshold sweep.

Paper: "The admission control (slack) threshold has a peak that balances
risk and reward for a given load factor.  It is more important to set
the slack threshold correctly at higher load levels." Loads {2, 1.33,
0.89, 0.67, 0.50}; thresholds −200…700; y-axis is percent improvement
over no admission control.

Both arms (with and without admission control) use FirstReward(α=0) so
the sweep isolates the admission policy itself.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import FigureResult
from repro.experiments.fig6 import DISCOUNT_RATE, fig67_spec
from repro.experiments.parallel import CellExecutor, submit_mean_yield
from repro.metrics.compare import improvement_percent

LOAD_FACTORS = (0.5, 0.67, 0.89, 1.33, 2.0)
THRESHOLDS = (-200.0, -100.0, 0.0, 100.0, 200.0, 300.0, 400.0, 500.0, 600.0, 700.0)
ALPHA = 0.0


def run_fig7(
    n_jobs: int = 5000,
    seeds: Sequence[int] = (0, 1),
    load_factors: Sequence[float] = LOAD_FACTORS,
    thresholds: Sequence[float] = THRESHOLDS,
    processors: int = 16,
    workers: Optional[int] = None,
) -> FigureResult:
    """Regenerate Figure 7's series.

    Rows: one per (load_factor, threshold) with the admission-controlled
    yield rate, the no-admission baseline, and percent improvement.
    """
    result = FigureResult(
        figure="fig7",
        title="Improvement over no admission control vs slack threshold",
        notes=[
            f"economy mix as Fig 6; both arms FirstReward(alpha={ALPHA:g}); "
            f"n={n_jobs}, seeds={list(seeds)}",
            "at loads > 1 the no-AC baseline yield rate is negative (unbounded "
            "penalties); improvement is relative to |baseline|",
        ],
    )
    heuristic = ("firstreward", {"alpha": ALPHA, "discount_rate": DISCOUNT_RATE})
    with CellExecutor(workers) as ex:
        cells = {}
        for load in load_factors:
            spec = fig67_spec(load, n_jobs=n_jobs, processors=processors)
            cells[load] = submit_mean_yield(
                ex, spec, heuristic, seeds, metric="yield_rate"
            )
            for threshold in thresholds:
                cells[load, threshold] = submit_mean_yield(
                    ex,
                    spec,
                    heuristic,
                    seeds,
                    metric="yield_rate",
                    admission=(
                        "slack",
                        {"threshold": threshold, "discount_rate": DISCOUNT_RATE},
                    ),
                )
        for load in load_factors:
            baseline = cells[load].result()
            for threshold in thresholds:
                rate = cells[load, threshold].result()
                result.rows.append(
                    {
                        "load_factor": load,
                        "threshold": threshold,
                        "yield_rate": rate,
                        "noac_yield_rate": baseline,
                        "improvement_pct": improvement_percent(rate, baseline),
                    }
                )
    return result
