"""Experiment harness: one module per paper figure (Figs 3–7).

Each ``figN`` module exposes ``run_figN(...) -> FigureResult`` with
keyword knobs for scale (job count, seeds) so the same code serves quick
CI checks and full paper-scale regeneration.  ``repro.experiments.runner``
holds the registry the CLI and the benchmark suite share, plus the
expected-shape checks recorded in DESIGN.md §3.
"""

from repro.experiments.common import FigureResult
from repro.experiments.consolidation import run_consolidation
from repro.experiments.replication import ReplicatedResult, run_replicated
from repro.experiments.runner import EXPERIMENTS, run_experiment, shape_report
from repro.experiments.sensitivity import run_load_horizon_grid, run_skew_grid

__all__ = [
    "EXPERIMENTS",
    "FigureResult",
    "ReplicatedResult",
    "run_consolidation",
    "run_experiment",
    "run_load_horizon_grid",
    "run_replicated",
    "run_skew_grid",
    "shape_report",
]
