"""Figure 6 — admission control: yield rate vs load factor.

Paper: "Admission control allows sites to select tasks with high reward
and low risk in the current candidate schedule.  The graph gives the
yield per unit of time for task streams with increasing loads along the
x-axis, and different values of α in the FirstReward heuristic."
Workload: 5000 jobs, exponential durations and inter-arrivals, unbounded
penalties, value skew 3, decay skew 5, discount 1%, slack threshold 180,
plus a FirstPrice-without-admission-control line.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import FigureResult
from repro.experiments.parallel import CellExecutor, submit_mean_yield
from repro.workload.millennium import economy_spec

LOAD_FACTORS = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5)
ALPHAS = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
VALUE_SKEW = 3.0
DECAY_SKEW = 5.0
DISCOUNT_RATE = 0.01
SLACK_THRESHOLD = 180.0


def fig67_spec(load_factor: float, n_jobs: int = 5000, processors: int = 16):
    return economy_spec(
        n_jobs=n_jobs,
        value_skew=VALUE_SKEW,
        decay_skew=DECAY_SKEW,
        load_factor=load_factor,
        processors=processors,
        penalty_bound=None,
    )


def run_fig6(
    n_jobs: int = 5000,
    seeds: Sequence[int] = (0, 1),
    load_factors: Sequence[float] = LOAD_FACTORS,
    alphas: Sequence[float] = ALPHAS,
    processors: int = 16,
    slack_threshold: float = SLACK_THRESHOLD,
    workers: Optional[int] = None,
) -> FigureResult:
    """Regenerate Figure 6's series.

    Rows: one per (policy, load_factor) where ``policy`` is either
    ``alpha=<a>`` (FirstReward + slack admission) or
    ``firstprice-noac``; the y value is the average yield rate over the
    active interval.
    """
    result = FigureResult(
        figure="fig6",
        title="Average yield rate vs load factor under slack admission control",
        notes=[
            f"economy mix: value skew {VALUE_SKEW}, decay skew {DECAY_SKEW}, "
            f"unbounded penalties, slack threshold {slack_threshold:g}, "
            f"discount {DISCOUNT_RATE:.0%}, n={n_jobs}, seeds={list(seeds)}",
            "yield-rate units are per-time currency in this repo's unit system "
            "(the paper's absolute axis depends on its undocumented currency unit)",
        ],
    )
    admission = ("slack", {"threshold": slack_threshold, "discount_rate": DISCOUNT_RATE})
    with CellExecutor(workers) as ex:
        cells = {}
        for load in load_factors:
            spec = fig67_spec(load, n_jobs=n_jobs, processors=processors)
            for alpha in alphas:
                cells[load, alpha] = submit_mean_yield(
                    ex,
                    spec,
                    ("firstreward", {"alpha": alpha, "discount_rate": DISCOUNT_RATE}),
                    seeds,
                    metric="yield_rate",
                    admission=admission,
                )
            cells[load] = submit_mean_yield(
                ex, spec, ("firstprice", {}), seeds, metric="yield_rate"
            )
        for load in load_factors:
            for alpha in alphas:
                result.rows.append(
                    {
                        "policy": f"alpha={alpha:g}",
                        "load_factor": load,
                        "yield_rate": cells[load, alpha].result(),
                    }
                )
            result.rows.append(
                {
                    "policy": "firstprice-noac",
                    "load_factor": load,
                    "yield_rate": cells[load].result(),
                }
            )
    return result
