"""Setup shim + optional mypyc build of the compiled sim-core backend.

All project metadata lives in ``pyproject.toml``; this file exists for
two reasons:

1. Legacy/offline toolchains: it lets ``pip install -e . --no-use-pep517``
   work where PEP 660 editable installs fail.
2. The **compiled backend** (``docs/performance.md``, "Backends"): when
   the environment variable ``REPRO_BUILD_MYPYC=1`` is set, the build
   generates the ``repro._c`` package (rewritten copies of the sim core;
   see ``scripts/gen_compiled_sources.py``) and compiles it with mypyc.
   The toolchain comes from the ``repro[compiled]`` extra::

       pip install 'repro[compiled]'           # toolchain only
       REPRO_BUILD_MYPYC=1 pip install -e .    # build the extension

   Without the flag — or when mypy/mypyc is unavailable — the build is
   a plain pure-Python install and ``repro._backend`` selects the pure
   backend at import time.  The flag never fails the build quietly: if
   requested and the toolchain is missing, the build errors out so CI
   cannot silently test the wrong backend.
"""

import os
import sys

from setuptools import setup


def _mypyc_extensions():
    if os.environ.get("REPRO_BUILD_MYPYC", "").strip() not in ("1", "true", "yes"):
        return {}
    try:
        from mypyc.build import mypycify
    except ImportError as exc:
        raise SystemExit(
            "REPRO_BUILD_MYPYC=1 but mypyc is not importable "
            f"({exc}); install the toolchain with `pip install 'repro[compiled]'`"
        ) from exc
    sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "scripts"))
    import gen_compiled_sources

    paths = gen_compiled_sources.generate(verbose=True)
    # the package __init__ stays interpreted (mypyc shims import through
    # it); everything else in the group is compiled
    sources = [p for p in paths if not p.endswith("__init__.py")]
    return {"ext_modules": mypycify(sources)}


setup(**_mypyc_extensions())
