"""Legacy setup shim.

This environment is offline and its setuptools predates the bundled
``bdist_wheel`` command, so PEP 660 editable installs fail without the
``wheel`` package.  This shim lets ``pip install -e . --no-use-pep517``
(and plain ``pip install -e .`` on modern toolchains) work either way.
All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
